"""Tests for virtual warehouses and the clustered engine."""

import numpy as np
import pytest

from repro.cluster.engine import ClusteredBlendHouse
from repro.cluster.faults import FaultSchedule
from repro.errors import NoWorkersError


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


@pytest.fixture
def cluster():
    engine = ClusteredBlendHouse(read_workers=3)
    engine.execute(
        "CREATE TABLE docs (id UInt64, label String, embedding Array(Float32), "
        "INDEX ann embedding TYPE FLAT('DIM=8'))"
    )
    engine.db.table("docs").writer.config.max_segment_rows = 100
    rng = np.random.default_rng(0)
    rows = [
        {"id": i, "label": ["a", "b"][i % 2],
         "embedding": rng.normal(size=8).astype(np.float32)}
        for i in range(600)
    ]
    engine.insert_rows("docs", rows)
    engine._rows = rows
    return engine


def top_ids(cluster, k=5, where=""):
    query = cluster._rows[17]["embedding"]
    where_text = f"WHERE {where} " if where else ""
    sql = (
        f"SELECT id, dist FROM docs {where_text}"
        f"ORDER BY L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {k}"
    )
    return [row[0] for row in cluster.execute(sql).rows]


class TestDistributedCorrectness:
    def test_matches_exact_search(self, cluster):
        rows = cluster._rows
        query = rows[17]["embedding"]
        distances = sorted(
            (float(np.linalg.norm(r["embedding"] - query)), r["id"]) for r in rows
        )
        expected = [rid for _, rid in distances[:5]]
        assert top_ids(cluster) == expected

    def test_hybrid_predicate_respected(self, cluster):
        ids = top_ids(cluster, k=5, where="label = 'a'")
        assert all(i % 2 == 0 for i in ids)

    def test_cold_cluster_uses_brute_force(self, cluster):
        top_ids(cluster)
        assert cluster.metrics.count("warehouse.tier.brute") > 0

    def test_preload_switches_to_local(self, cluster):
        loaded = cluster.preload("docs")
        assert loaded == len(cluster.db.table("docs").manager)
        before = cluster.metrics.count("warehouse.tier.local")
        top_ids(cluster)
        assert cluster.metrics.count("warehouse.tier.local") > before

    def test_empty_warehouse_raises(self, cluster):
        cluster.read_vw.scale_to(0)
        with pytest.raises(NoWorkersError):
            top_ids(cluster)


class TestScaling:
    def test_serving_after_scale_up(self, cluster):
        cluster.preload("docs")
        top_ids(cluster)
        cluster.scale_to(5)
        top_ids(cluster)
        assert cluster.metrics.count("warehouse.tier.serving") > 0

    def test_results_stable_across_scaling(self, cluster):
        cluster.preload("docs")
        before = top_ids(cluster)
        cluster.scale_to(6)
        after = top_ids(cluster)
        assert before == after

    def test_scale_down(self, cluster):
        cluster.scale_to(1)
        assert cluster.read_vw.worker_count == 1
        assert len(top_ids(cluster)) == 5

    def test_makespan_parallelism(self, cluster):
        """More workers → less simulated time per query (same work split
        across more nodes)."""
        cluster.preload("docs")
        cluster.settings.enable_plan_cache = True
        top_ids(cluster)  # warm plan cache
        one_start = cluster.clock.now
        top_ids(cluster)
        t_three = cluster.clock.now - one_start

        cluster.scale_to(6)
        cluster.preload("docs")
        two_start = cluster.clock.now
        top_ids(cluster)
        t_six = cluster.clock.now - two_start
        assert t_six <= t_three * 1.05


class TestInterference:
    def test_background_load_inflates_makespan(self, cluster):
        """Interference applies to the warehouse's compute makespan (the
        planning path runs on the service layer and is unaffected)."""
        cluster.preload("docs")
        recorder = cluster.metrics.latency("warehouse.makespan")
        top_ids(cluster)
        clean = recorder.values[-1]
        cluster.read_vw.background_load = 0.75
        top_ids(cluster)
        loaded = recorder.values[-1]
        assert loaded == pytest.approx(clean * 4.0, rel=0.2)


class TestFaults:
    def test_query_survives_worker_failure(self, cluster):
        cluster.preload("docs")
        expected = top_ids(cluster)
        victim = sorted(cluster.read_vw.workers)[0]
        cluster.read_vw.fail_worker(victim)
        assert top_ids(cluster) == expected

    def test_fault_schedule_fires_in_order(self, cluster):
        schedule = FaultSchedule(cluster.read_vw)
        victim = sorted(cluster.read_vw.workers)[0]
        now = cluster.clock.now
        schedule.fail_at(now + 0.5, victim).recover_at(now + 1.0, victim)
        assert schedule.pending == 2
        cluster.clock.advance(0.6)
        fired = schedule.tick()
        assert [k for _, k, _ in fired] == ["fail"]
        assert cluster.read_vw.worker_count == 2
        cluster.clock.advance(0.5)
        schedule.tick()
        assert cluster.read_vw.worker_count == 3
        assert schedule.pending == 0

    def test_recovered_worker_serves(self, cluster):
        schedule = FaultSchedule(cluster.read_vw)
        victim = sorted(cluster.read_vw.workers)[0]
        cluster.read_vw.fail_worker(victim)
        schedule.recover_at(cluster.clock.now, victim)
        schedule.tick()
        assert len(top_ids(cluster)) == 5


class TestCompactionInvalidation:
    def test_retired_indexes_dropped_from_workers(self, cluster):
        cluster.preload("docs")
        runtime = cluster.db.table("docs")
        keys_before = {
            sid: runtime.manager.index_key(sid)
            for sid in runtime.manager.segment_ids()
        }
        results = cluster.db.compact("docs")
        assert results, "compaction should merge the small segments"
        surviving = set(runtime.manager.segment_ids())
        retired_keys = [
            key for sid, key in keys_before.items() if sid not in surviving
        ]
        assert retired_keys, "some segments must have been retired"
        for worker in cluster.read_vw.workers.values():
            for key in retired_keys:
                assert not worker.has_index_in_memory(key)


class TestAdmissionControl:
    def make_cluster(self, **config_kwargs):
        from repro.cluster.warehouse import WarehouseConfig

        engine = ClusteredBlendHouse(
            read_workers=2, warehouse_config=WarehouseConfig(**config_kwargs)
        )
        engine.execute(
            "CREATE TABLE docs (id UInt64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=8'))"
        )
        engine.db.table("docs").writer.config.max_segment_rows = 50
        rng = np.random.default_rng(0)
        rows = [
            {"id": i, "embedding": rng.normal(size=8).astype(np.float32)}
            for i in range(400)
        ]
        engine.insert_rows("docs", rows)
        engine._rows = rows
        return engine

    def run_one(self, engine):
        query = engine._rows[3]["embedding"]
        sql = (
            f"SELECT id, dist FROM docs ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT 5"
        )
        return engine.execute(sql)

    def test_multi_core_workers_cut_makespan(self):
        latencies = {}
        ids = {}
        for cores in (1, 4):
            engine = self.make_cluster(worker_cores=cores)
            self.run_one(engine)  # warm caches
            out = self.run_one(engine)
            latencies[cores] = out.simulated_seconds
            ids[cores] = [row[0] for row in out.rows]
        assert ids[4] == ids[1]
        assert latencies[4] < latencies[1]

    def test_inflight_cap_throttles_back_to_serial(self):
        # 2 workers sharing a cap of 2 scans -> 1 lane each, regardless
        # of how many cores a worker has.
        capped = self.make_cluster(worker_cores=4, max_inflight_scans=2)
        uncapped = self.make_cluster(worker_cores=4)
        serial = self.make_cluster(worker_cores=1)
        for engine in (capped, uncapped, serial):
            self.run_one(engine)  # warm caches
        capped_s = self.run_one(capped).simulated_seconds
        uncapped_s = self.run_one(uncapped).simulated_seconds
        serial_s = self.run_one(serial).simulated_seconds
        assert capped_s == pytest.approx(serial_s)
        assert uncapped_s < capped_s

    def test_queue_depth_metric_recorded(self):
        engine = self.make_cluster(worker_cores=1)
        self.run_one(engine)
        gauge = engine.metrics.sampled("warehouse.queue_depth")
        assert gauge.count > 0
        # 8 segments over 2 single-core workers: scans beyond the lane
        # queue, and the counter tracks how many waited.
        assert engine.metrics.count("warehouse.scans_queued") > 0

    def test_zero_cap_means_unbounded(self):
        engine = self.make_cluster(worker_cores=4, max_inflight_scans=0)
        self.run_one(engine)
        assert self.run_one(engine).rows
