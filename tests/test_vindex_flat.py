"""Tests for the FLAT (exact) index."""

import numpy as np
import pytest

from repro.errors import IndexParameterError
from repro.vindex.flat import FlatIndex


@pytest.fixture
def index(vectors):
    idx = FlatIndex(dim=16)
    idx.add_with_ids(vectors, np.arange(vectors.shape[0]))
    return idx


class TestExactness:
    def test_top1_is_exact(self, index, vectors):
        result = index.search_with_filter(vectors[5], 1)
        assert result.ids[0] == 5
        assert result.distances[0] == pytest.approx(0.0, abs=1e-5)

    def test_topk_matches_numpy(self, index, vectors):
        query = vectors[0] + 0.1
        expected = np.argsort(np.linalg.norm(vectors - query, axis=1))[:10]
        result = index.search_with_filter(query, 10)
        np.testing.assert_array_equal(result.ids, expected)

    def test_distances_ascending(self, index, vectors):
        result = index.search_with_filter(vectors[3], 20)
        assert np.all(np.diff(result.distances) >= 0)

    def test_visited_equals_ntotal(self, index, vectors):
        result = index.search_with_filter(vectors[0], 5)
        assert result.visited == vectors.shape[0]


class TestFiltering:
    def test_bitset_respected(self, index, vectors):
        bitset = np.zeros(vectors.shape[0], dtype=bool)
        bitset[::3] = True
        result = index.search_with_filter(vectors[0], 10, bitset=bitset)
        assert all(i % 3 == 0 for i in result.ids.tolist())

    def test_empty_bitset_returns_empty(self, index, vectors):
        bitset = np.zeros(vectors.shape[0], dtype=bool)
        result = index.search_with_filter(vectors[0], 10, bitset=bitset)
        assert len(result) == 0

    def test_short_bitset_rejected(self, index, vectors):
        with pytest.raises(IndexParameterError):
            index.search_with_filter(vectors[0], 5, bitset=np.ones(3, dtype=bool))


class TestRangeSearch:
    def test_range_matches_threshold(self, index, vectors):
        query = vectors[7]
        distances = np.linalg.norm(vectors - query, axis=1)
        radius = float(np.sort(distances)[15])
        result = index.search_with_range(query, radius)
        assert len(result) == 16  # the 15 nearest plus itself
        assert np.all(result.distances <= radius + 1e-6)

    def test_negative_radius_rejected(self, index, vectors):
        with pytest.raises(IndexParameterError):
            index.search_with_range(vectors[0], -1.0)

    def test_range_with_bitset(self, index, vectors):
        bitset = np.zeros(vectors.shape[0], dtype=bool)
        bitset[:10] = True
        result = index.search_with_range(vectors[0], 100.0, bitset=bitset)
        assert set(result.ids.tolist()) <= set(range(10))


class TestLifecycle:
    def test_id_count_mismatch_rejected(self, vectors):
        idx = FlatIndex(dim=16)
        with pytest.raises(IndexParameterError):
            idx.add_with_ids(vectors, np.arange(3))

    def test_wrong_dim_rejected(self, index):
        with pytest.raises(IndexParameterError):
            index.search_with_filter(np.zeros(8, dtype=np.float32), 1)

    def test_empty_index_returns_empty(self):
        idx = FlatIndex(dim=4)
        result = idx.search_with_filter(np.zeros(4, dtype=np.float32), 3)
        assert len(result) == 0

    def test_custom_ids(self, vectors):
        idx = FlatIndex(dim=16)
        ids = np.arange(vectors.shape[0]) * 10 + 7
        idx.add_with_ids(vectors, ids)
        result = idx.search_with_filter(vectors[2], 1)
        assert result.ids[0] == 27

    def test_serialization_roundtrip(self, index, vectors):
        from repro.vindex.registry import deserialize_index, serialize_index

        restored = deserialize_index(serialize_index(index))
        a = index.search_with_filter(vectors[0], 5)
        b = restored.search_with_filter(vectors[0], 5)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_memory_bytes_reasonable(self, index, vectors):
        assert index.memory_bytes() >= vectors.nbytes

    def test_ip_metric(self, vectors):
        idx = FlatIndex(dim=16, metric="ip")
        idx.add_with_ids(vectors, np.arange(vectors.shape[0]))
        result = idx.search_with_filter(vectors[0], 1)
        # Max inner product with itself for this data (norms comparable).
        expected = int(np.argmax(vectors @ vectors[0]))
        assert result.ids[0] == expected
