"""Focused tests for the fault-injection schedule."""

import pytest

from repro.cluster.faults import FaultSchedule
from repro.cluster.warehouse import VirtualWarehouse
from repro.storage.objectstore import ObjectStore


@pytest.fixture
def warehouse(clock, cost, metrics):
    store = ObjectStore(clock, cost, metrics)
    vw = VirtualWarehouse("vw", clock, cost, store, metrics=metrics)
    for _ in range(3):
        vw.add_worker()
    return vw


class TestScheduleOrdering:
    def test_events_fire_in_time_order(self, warehouse, clock):
        schedule = FaultSchedule(warehouse)
        w0, w1 = sorted(warehouse.workers)[:2]
        # Inserted out of order; must fire in time order.
        schedule.fail_at(2.0, w1)
        schedule.fail_at(1.0, w0)
        clock.advance(3.0)
        fired = schedule.tick()
        assert [(t, k, w) for t, k, w in fired] == [
            (1.0, "fail", w0), (2.0, "fail", w1),
        ]
        assert warehouse.worker_count == 1

    def test_future_events_do_not_fire(self, warehouse, clock):
        schedule = FaultSchedule(warehouse)
        schedule.fail_at(10.0, sorted(warehouse.workers)[0])
        clock.advance(1.0)
        assert schedule.tick() == []
        assert schedule.pending == 1
        assert warehouse.worker_count == 3

    def test_fired_history_accumulates(self, warehouse, clock):
        schedule = FaultSchedule(warehouse)
        victim = sorted(warehouse.workers)[0]
        schedule.fail_at(0.5, victim).recover_at(1.0, victim)
        clock.advance(0.6)
        schedule.tick()
        clock.advance(0.6)
        schedule.tick()
        assert [k for _, k, _ in schedule.fired] == ["fail", "recover"]
        assert schedule.pending == 0


class TestRecoverySemantics:
    def test_recovered_worker_is_reachable_and_cold(self, warehouse, clock):
        schedule = FaultSchedule(warehouse)
        victim = sorted(warehouse.workers)[0]
        schedule.fail_at(0.1, victim).recover_at(0.2, victim)
        clock.advance(0.3)
        schedule.tick()
        assert victim in warehouse.workers
        assert warehouse.workers[victim].alive
        # Crash-recovered workers come back with empty caches.
        assert not warehouse.workers[victim]._pending_loads

    def test_failure_removes_from_ring(self, warehouse, clock):
        schedule = FaultSchedule(warehouse)
        victim = sorted(warehouse.workers)[0]
        schedule.fail_at(0.1, victim)
        clock.advance(0.2)
        schedule.tick()
        assert victim not in warehouse.scheduler.worker_ids
