"""Tests for the SQL lexer."""

import pytest

from repro.errors import ParseError
from repro.sqlparser.lexer import TokenType, tokenize


def kinds(sql):
    return [t.type for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasics:
    def test_keywords_uppercased(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type == TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        assert values("MyTable my_col") == ["MyTable", "my_col"]

    def test_eof_always_last(self):
        assert tokenize("")[-1].type == TokenType.EOF
        assert tokenize("SELECT")[-1].type == TokenType.EOF

    def test_positions_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestNumbers:
    def test_integer(self):
        assert values("42") == ["42"]

    def test_float(self):
        assert values("3.14") == ["3.14"]

    def test_scientific(self):
        assert values("1e-5 2.5E3") == ["1e-5", "2.5E3"]

    def test_leading_dot(self):
        assert values(".5") == [".5"]


class TestStrings:
    def test_single_quoted(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type == TokenType.STRING
        assert tokens[0].value == "hello world"

    def test_double_quoted(self):
        assert tokenize('"abc"')[0].value == "abc"

    def test_escaped_quote(self):
        assert tokenize(r"'it\'s'")[0].value == "it's"

    def test_unterminated_raises(self):
        with pytest.raises(ParseError):
            tokenize("'oops")


class TestOperatorsAndPunctuation:
    def test_two_char_operators(self):
        assert values("<= >= != <>") == ["<=", ">=", "!=", "<>"]

    def test_brackets_and_parens(self):
        tokens = tokenize("([1,2])")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.LPAREN, TokenType.LBRACKET, TokenType.NUMBER,
            TokenType.COMMA, TokenType.NUMBER, TokenType.RBRACKET,
            TokenType.RPAREN,
        ]

    def test_comment_skipped(self):
        assert values("SELECT -- a comment\n1") == ["SELECT", "1"]

    def test_unexpected_char(self):
        with pytest.raises(ParseError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7

    def test_semicolon(self):
        assert tokenize(";")[0].type == TokenType.SEMICOLON


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")
