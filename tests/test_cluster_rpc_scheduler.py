"""Tests for the RPC fabric and segment scheduler."""

import pytest

from repro.cluster.rpc import RpcFabric
from repro.cluster.scheduler import SegmentScheduler
from repro.errors import WorkerUnavailableError


@pytest.fixture
def fabric(clock, cost, metrics):
    return RpcFabric(clock, cost, metrics)


class TestRpc:
    def test_call_roundtrip(self, fabric):
        fabric.endpoint("w1").register("echo", lambda x: x * 2)
        assert fabric.call("w1", "echo", 10, 10, 21) == 42

    def test_call_charges_clock(self, fabric, clock):
        fabric.endpoint("w1").register("noop", lambda: None)
        before = clock.now
        fabric.call("w1", "noop", 100, 100)
        assert clock.now > before

    def test_unknown_target(self, fabric):
        with pytest.raises(WorkerUnavailableError):
            fabric.call("ghost", "echo", 1, 1)

    def test_unreachable_target(self, fabric):
        fabric.endpoint("w1").register("echo", lambda x: x)
        fabric.set_reachable("w1", False)
        with pytest.raises(WorkerUnavailableError):
            fabric.call("w1", "echo", 1, 1, 5)
        fabric.set_reachable("w1", True)
        assert fabric.call("w1", "echo", 1, 1, 5) == 5

    def test_unknown_method(self, fabric):
        fabric.endpoint("w1")
        with pytest.raises(WorkerUnavailableError):
            fabric.call("w1", "nothing", 1, 1)

    def test_remove_endpoint(self, fabric):
        fabric.endpoint("w1").register("echo", lambda x: x)
        fabric.remove("w1")
        with pytest.raises(WorkerUnavailableError):
            fabric.call("w1", "echo", 1, 1, 5)

    def test_metrics_counters(self, fabric, metrics):
        fabric.endpoint("w1").register("echo", lambda x: x)
        fabric.call("w1", "echo", 1, 1, 5)
        assert metrics.count("rpc.calls") == 1
        with pytest.raises(WorkerUnavailableError):
            fabric.call("ghost", "echo", 1, 1)
        assert metrics.count("rpc.failures") == 1


class TestScheduler:
    def segment_ids(self, n=60):
        return [f"t/seg-{i}" for i in range(n)]

    def test_assignment_covers_all_segments(self):
        scheduler = SegmentScheduler()
        for w in ("a", "b", "c"):
            scheduler.add_worker(w)
        assignment = scheduler.assign(self.segment_ids())
        assert set(assignment) == set(self.segment_ids())
        assert set(assignment.values()) <= {"a", "b", "c"}

    def test_group_by_worker_inverts(self):
        scheduler = SegmentScheduler()
        scheduler.add_worker("a")
        scheduler.add_worker("b")
        assignment = scheduler.assign(self.segment_ids(10))
        grouped = scheduler.group_by_worker(assignment)
        flattened = [s for segs in grouped.values() for s in segs]
        assert sorted(flattened) == sorted(self.segment_ids(10))

    def test_previous_owner_tracked_on_scale(self):
        scheduler = SegmentScheduler()
        for w in ("a", "b"):
            scheduler.add_worker(w)
        first = scheduler.assign(self.segment_ids())
        scheduler.add_worker("c")
        second = scheduler.assign(self.segment_ids())
        moved = [s for s in first if first[s] != second[s]]
        assert moved, "scaling should move some segments"
        for segment in moved:
            assert scheduler.previous_owner(segment) == first[segment]
            assert scheduler.current_owner(segment) == second[segment]

    def test_previous_owner_none_initially(self):
        scheduler = SegmentScheduler()
        scheduler.add_worker("a")
        scheduler.assign(["s1"])
        assert scheduler.previous_owner("s1") is None

    def test_moved_fraction_zero_without_change(self):
        scheduler = SegmentScheduler()
        scheduler.add_worker("a")
        scheduler.add_worker("b")
        ids = self.segment_ids(40)
        scheduler.assign(ids)
        assert scheduler.moved_fraction(ids) == 0.0

    def test_moved_fraction_small_after_scale(self):
        scheduler = SegmentScheduler()
        for i in range(5):
            scheduler.add_worker(f"w{i}")
        ids = self.segment_ids(300)
        scheduler.assign(ids)
        scheduler.add_worker("w5")
        assert 0.0 < scheduler.moved_fraction(ids) < 0.4
