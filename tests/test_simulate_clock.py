"""Tests for the simulated clock."""

import pytest

from repro.simulate.clock import SimulatedClock


class TestAdvance:
    def test_starts_at_zero(self):
        assert SimulatedClock().now == 0.0

    def test_custom_start(self):
        assert SimulatedClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_returns_new_time(self):
        clock = SimulatedClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = SimulatedClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimulatedClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_elapsed_since(self):
        clock = SimulatedClock()
        mark = clock.now
        clock.advance(2.5)
        assert clock.elapsed_since(mark) == pytest.approx(2.5)


class TestPause:
    def test_paused_drops_charges(self):
        clock = SimulatedClock()
        with clock.paused():
            clock.advance(100.0)
        assert clock.now == 0.0

    def test_nested_pause(self):
        clock = SimulatedClock()
        with clock.paused():
            with clock.paused():
                clock.advance(1.0)
            clock.advance(1.0)
        assert clock.now == 0.0
        clock.advance(1.0)
        assert clock.now == 1.0

    def test_frozen_flag(self):
        clock = SimulatedClock()
        assert not clock.frozen
        with clock.paused():
            assert clock.frozen
        assert not clock.frozen


class TestCapture:
    def test_capture_accumulates_without_advancing(self):
        clock = SimulatedClock()
        with clock.capturing() as captured:
            clock.advance(2.0)
            clock.advance(3.0)
        assert captured.total == pytest.approx(5.0)
        assert clock.now == 0.0

    def test_nested_capture_inner_wins(self):
        clock = SimulatedClock()
        with clock.capturing() as outer:
            clock.advance(1.0)
            with clock.capturing() as inner:
                clock.advance(2.0)
            clock.advance(3.0)
        assert inner.total == pytest.approx(2.0)
        assert outer.total == pytest.approx(4.0)

    def test_pause_inside_capture_drops(self):
        clock = SimulatedClock()
        with clock.capturing() as captured:
            with clock.paused():
                clock.advance(9.0)
        assert captured.total == 0.0


class TestReset:
    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(4.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().reset(-1)
