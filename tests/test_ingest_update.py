"""Tests for realtime UPDATE/DELETE via multi-versioning."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.ingest.update import apply_delete, apply_update
from repro.ingest.writer import IngestConfig, SegmentWriter
from repro.sqlparser.parser import parse_statement
from repro.storage.lsm import SegmentManager
from repro.storage.objectstore import ObjectStore
from repro.vindex.registry import IndexSpec


@pytest.fixture
def table(clock, cost):
    store = ObjectStore(clock, cost)
    catalog = Catalog()
    ddl = parse_statement(
        "CREATE TABLE t (id UInt64, label String, embedding Array(Float32))"
    )
    schema = TableSchema.from_ddl(
        ddl.name, ddl.columns, index_spec=IndexSpec(index_type="FLAT", dim=4)
    )
    entry = catalog.create_table(schema)
    manager = SegmentManager()
    writer = SegmentWriter(
        entry, manager, store, clock, cost_model=cost,
        config=IngestConfig(max_segment_rows=25),
    )
    rng = np.random.default_rng(0)
    writer.ingest_rows(
        [
            {"id": i, "label": ["x", "y"][i % 2],
             "embedding": rng.normal(size=4).astype(np.float32)}
            for i in range(50)
        ]
    )
    return manager, writer


def where(text):
    return parse_statement(f"SELECT id FROM t WHERE {text}").where


class TestDelete:
    def test_delete_marks_rows(self, table):
        manager, _ = table
        result = apply_delete(manager, where("id < 10"))
        assert result.deleted_rows == 10
        assert manager.alive_rows() == 40

    def test_delete_idempotent(self, table):
        manager, _ = table
        apply_delete(manager, where("id < 10"))
        second = apply_delete(manager, where("id < 10"))
        assert second.deleted_rows == 0
        assert second.matched_rows == 0

    def test_delete_all(self, table):
        manager, _ = table
        result = apply_delete(manager, None)
        assert result.deleted_rows == 50
        assert manager.alive_rows() == 0

    def test_delete_string_predicate(self, table):
        manager, _ = table
        result = apply_delete(manager, where("label = 'x'"))
        assert result.deleted_rows == 25


class TestUpdate:
    def test_update_creates_new_version(self, table):
        manager, writer = table
        segments_before = len(manager)
        statement = parse_statement("UPDATE t SET label = 'new' WHERE id = 7")
        result = apply_update(manager, writer, statement.assignments, statement.where)
        assert result.matched_rows == 1
        assert result.deleted_rows == 1
        assert len(result.new_segment_ids) == 1
        assert len(manager) == segments_before + 1
        # Total alive rows unchanged: one dead + one new.
        assert manager.alive_rows() == 50

    def test_updated_value_visible(self, table):
        manager, writer = table
        statement = parse_statement("UPDATE t SET label = 'zzz' WHERE id = 3")
        apply_update(manager, writer, statement.assignments, statement.where)
        found = []
        for segment in manager.segments():
            bitmap = manager.bitmap(segment.segment_id)
            ids = segment.scalar_column("id")
            labels = segment.scalar_column("label")
            for offset in range(segment.row_count):
                if ids[offset] == 3 and not bitmap.is_deleted(offset):
                    found.append(labels[offset])
        assert found == ["zzz"]

    def test_update_vector_column(self, table):
        manager, writer = table
        statement = parse_statement(
            "UPDATE t SET embedding = [9.0, 9.0, 9.0, 9.0] WHERE id = 1"
        )
        result = apply_update(manager, writer, statement.assignments, statement.where)
        new_segment = manager.segment(result.new_segment_ids[0])
        np.testing.assert_allclose(new_segment.vectors()[0], [9, 9, 9, 9])

    def test_update_expression_over_old_row(self, table):
        manager, writer = table
        statement = parse_statement("UPDATE t SET id = id + 1000 WHERE id = 5")
        result = apply_update(manager, writer, statement.assignments, statement.where)
        new_segment = manager.segment(result.new_segment_ids[0])
        assert new_segment.scalar_column("id")[0] == 1005

    def test_update_no_match(self, table):
        manager, writer = table
        statement = parse_statement("UPDATE t SET label = 'q' WHERE id = 9999")
        result = apply_update(manager, writer, statement.assignments, statement.where)
        assert result.matched_rows == 0
        assert result.new_segment_ids == []
