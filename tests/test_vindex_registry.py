"""Tests for the pluggable index registry."""

import numpy as np
import pytest

from repro.errors import IndexParameterError, UnknownIndexTypeError
from repro.vindex.api import SearchResult, VectorIndex
from repro.vindex.registry import (
    IndexSpec,
    create_index,
    deserialize_index,
    parse_index_options,
    register_index_type,
    registered_types,
    serialize_index,
)


class TestSpec:
    def test_known_types_registered(self):
        names = registered_types()
        for expected in ("FLAT", "HNSW", "HNSWSQ", "IVFFLAT", "IVFPQ", "IVFPQFS", "DISKANN"):
            assert expected in names

    def test_unknown_type_rejected(self):
        with pytest.raises(UnknownIndexTypeError):
            IndexSpec(index_type="BTREE", dim=8)

    def test_bad_dim_rejected(self):
        with pytest.raises(IndexParameterError):
            IndexSpec(index_type="FLAT", dim=0)

    def test_case_insensitive(self):
        spec = IndexSpec(index_type="hnsw", dim=8)
        assert spec.index_type == "HNSW"

    def test_with_params_copies(self):
        spec = IndexSpec(index_type="IVFFLAT", dim=8, params={"nlist": 4})
        derived = spec.with_params(nlist=16)
        assert derived.params["nlist"] == 16
        assert spec.params["nlist"] == 4


class TestOptionsParsing:
    def test_parse_mixed_options(self):
        options = parse_index_options("DIM=960, M=16, alpha=1.2, mode=fast")
        assert options == {"dim": 960, "m": 16, "alpha": 1.2, "mode": "fast"}

    def test_quoted_values(self):
        assert parse_index_options("DIM='64'") == {"dim": 64}

    def test_empty_string(self):
        assert parse_index_options("") == {}

    def test_malformed_rejected(self):
        with pytest.raises(IndexParameterError):
            parse_index_options("DIM")


class TestCreate:
    def test_create_with_params(self):
        spec = IndexSpec(index_type="HNSW", dim=8, params={"m": 4, "ef_construction": 32})
        index = create_index(spec)
        assert index.m == 4
        assert index.ef_construction == 32

    def test_unknown_param_rejected(self):
        spec = IndexSpec(index_type="FLAT", dim=8, params={"bogus": 1})
        with pytest.raises(IndexParameterError):
            create_index(spec)

    def test_dim_metric_params_ignored(self):
        spec = IndexSpec(index_type="FLAT", dim=8, params={"dim": 8, "metric": "l2"})
        index = create_index(spec)
        assert index.dim == 8


class TestSerialization:
    def test_roundtrip_every_type(self, vectors):
        for name in registered_types():
            if name == "_ECHO":
                continue
            spec = IndexSpec(index_type=name, dim=16, params={})
            index = create_index(spec)
            index.train(vectors)
            index.add_with_ids(vectors[:100], np.arange(100))
            restored = deserialize_index(serialize_index(index))
            assert restored.index_type == index.index_type
            assert restored.ntotal == index.ntotal

    def test_unknown_payload_rejected(self):
        import pickle

        payload = pickle.dumps({"index_type": "GHOST"})
        with pytest.raises(UnknownIndexTypeError):
            deserialize_index(payload)


class _EchoIndex(VectorIndex):
    """Minimal plugin proving third-party registration works."""

    index_type = "_ECHO"

    def __init__(self, dim, metric="l2"):
        super().__init__(dim, metric)
        self._n = 0

    @property
    def ntotal(self):
        return self._n

    def add_with_ids(self, vectors, ids):
        self._n += len(ids)

    def search_with_filter(self, query, k, bitset=None, **params):
        return SearchResult.empty()

    def to_payload(self):
        return {"index_type": self.index_type, "dim": self.dim, "metric": self.metric}

    @classmethod
    def from_payload(cls, payload):
        return cls(payload["dim"], payload["metric"])

    def memory_bytes(self):
        return 0


class TestPluggability:
    def test_register_custom_type(self):
        register_index_type("_ECHO", _EchoIndex, int_params=set())
        spec = IndexSpec(index_type="_ECHO", dim=4)
        index = create_index(spec)
        assert isinstance(index, _EchoIndex)
        assert "_ECHO" in registered_types()
