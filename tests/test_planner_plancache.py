"""Tests for the parameterized plan cache."""

import pytest

from repro.planner.optimizer import ExecutionStrategy, PhysicalPlan
from repro.planner.plancache import PlanCache, parameterize


def dummy_plan():
    return PhysicalPlan(logical=None, strategy=ExecutionStrategy.POST_FILTER)


class TestParameterize:
    def test_literals_abstracted(self):
        a = parameterize("SELECT id FROM t WHERE x < 5 LIMIT 10")
        b = parameterize("SELECT id FROM t WHERE x < 999 LIMIT 20")
        assert a == b

    def test_string_literals_abstracted(self):
        a = parameterize("SELECT id FROM t WHERE label = 'cat'")
        b = parameterize("SELECT id FROM t WHERE label = 'dog'")
        assert a == b

    def test_vector_literals_collapse(self):
        a = parameterize("SELECT id FROM t ORDER BY L2Distance(v, [1.0, 2.0]) LIMIT 5")
        b = parameterize(
            "SELECT id FROM t ORDER BY L2Distance(v, [9.9, 8.8, 7.7, 6.6]) LIMIT 5"
        )
        assert a == b

    def test_nested_vector_literals_collapse_to_one_slot(self):
        # Regression: nested brackets used to emit one "[?]" per nesting
        # level, so equivalent queries missed the cache.
        flat = parameterize("SELECT id FROM t ORDER BY L2Distance(v, [1.0, 2.0])")
        nested = parameterize(
            "SELECT id FROM t ORDER BY L2Distance(v, [[1.0, 2.0], [3.0, 4.0]])"
        )
        assert flat == nested
        assert flat.count("[?]") == 1

    def test_structure_distinguished(self):
        a = parameterize("SELECT id FROM t WHERE x < 5")
        b = parameterize("SELECT id FROM t WHERE x > 5")
        assert a != b

    def test_different_columns_distinguished(self):
        assert parameterize("SELECT a FROM t") != parameterize("SELECT b FROM t")

    def test_keyword_case_normalized(self):
        assert parameterize("select id from t") == parameterize("SELECT id FROM t")


class TestPlanCache:
    def test_lookup_miss_then_hit(self):
        cache = PlanCache()
        sql = "SELECT id FROM t WHERE x < 5 LIMIT 10"
        assert cache.lookup(sql) is None
        cache.store(sql, dummy_plan())
        hit = cache.lookup("SELECT id FROM t WHERE x < 77 LIMIT 3")
        assert hit is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_eviction(self):
        cache = PlanCache(capacity=2)
        cache.store("SELECT a FROM t", dummy_plan())
        cache.store("SELECT b FROM t", dummy_plan())
        cache.store("SELECT c FROM t", dummy_plan())
        assert cache.lookup("SELECT a FROM t") is None
        assert cache.lookup("SELECT c FROM t") is not None

    def test_invalidate(self):
        cache = PlanCache()
        cache.store("SELECT a FROM t", dummy_plan())
        cache.invalidate()
        assert cache.lookup("SELECT a FROM t") is None

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_len(self):
        cache = PlanCache()
        cache.store("SELECT a FROM t", dummy_plan())
        assert len(cache) == 1
