"""Tests for multi-probe consistent hashing, with hypothesis invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hashring import MultiProbeHashRing
from repro.errors import NoWorkersError


def keys(n=200):
    return [f"table/seg-{i:05d}" for i in range(n)]


class TestMembership:
    def test_add_remove(self):
        ring = MultiProbeHashRing()
        ring.add_worker("w1")
        ring.add_worker("w2")
        assert ring.worker_ids == ["w1", "w2"]
        assert ring.remove_worker("w1")
        assert not ring.remove_worker("w1")
        assert ring.worker_ids == ["w2"]

    def test_add_idempotent(self):
        ring = MultiProbeHashRing()
        ring.add_worker("w1")
        ring.add_worker("w1")
        assert len(ring) == 1

    def test_empty_ring_raises(self):
        with pytest.raises(NoWorkersError):
            MultiProbeHashRing().assign("seg")

    def test_bad_probe_count(self):
        with pytest.raises(ValueError):
            MultiProbeHashRing(probes=0)


class TestAssignment:
    def test_deterministic(self):
        ring = MultiProbeHashRing()
        for w in ("a", "b", "c"):
            ring.add_worker(w)
        assert ring.assign("seg-1") == ring.assign("seg-1")

    def test_single_worker_gets_everything(self):
        ring = MultiProbeHashRing()
        ring.add_worker("only")
        assert all(ring.assign(k) == "only" for k in keys(20))

    def test_balance_reasonable(self):
        """Multi-probe's selling point: near-uniform load with one point
        per worker."""
        ring = MultiProbeHashRing()
        workers = [f"w{i}" for i in range(8)]
        for w in workers:
            ring.add_worker(w)
        counts = ring.load_distribution(keys(800))
        expected = 800 / 8
        assert max(counts.values()) < 2.2 * expected
        assert min(counts.values()) > 0.3 * expected

    def test_scale_up_moves_about_one_over_n(self):
        """The consistent-hashing property the paper leans on: adding a
        worker to n moves ≈ 1/(n+1) of keys."""
        ring = MultiProbeHashRing()
        for i in range(5):
            ring.add_worker(f"w{i}")
        before = ring.assignment(keys(600))
        ring.add_worker("w5")
        after = ring.assignment(keys(600))
        moved = sum(1 for k in before if before[k] != after[k])
        fraction = moved / 600
        assert 0.05 < fraction < 0.35  # ideal 1/6 ≈ 0.167

    def test_moved_keys_go_to_new_worker(self):
        ring = MultiProbeHashRing()
        for i in range(4):
            ring.add_worker(f"w{i}")
        before = ring.assignment(keys(400))
        ring.add_worker("new")
        after = ring.assignment(keys(400))
        for key in before:
            if before[key] != after[key]:
                assert after[key] == "new"

    def test_remove_only_reassigns_victims_keys(self):
        ring = MultiProbeHashRing()
        for i in range(5):
            ring.add_worker(f"w{i}")
        before = ring.assignment(keys(400))
        ring.remove_worker("w2")
        after = ring.assignment(keys(400))
        for key in before:
            if before[key] != "w2":
                assert after[key] == before[key]


class TestProperties:
    @given(
        n_workers=st.integers(min_value=1, max_value=12),
        n_keys=st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_key_assigned_to_member(self, n_workers, n_keys):
        ring = MultiProbeHashRing()
        workers = [f"w{i}" for i in range(n_workers)]
        for w in workers:
            ring.add_worker(w)
        for key in keys(n_keys):
            assert ring.assign(key) in workers

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_add_then_remove_restores_assignment(self, n_workers):
        ring = MultiProbeHashRing()
        for i in range(n_workers):
            ring.add_worker(f"w{i}")
        before = ring.assignment(keys(100))
        ring.add_worker("transient")
        ring.remove_worker("transient")
        after = ring.assignment(keys(100))
        assert before == after


class TestProbeBalance:
    """More probes flatten the load: the multi-probe trade-off."""

    @staticmethod
    def _spread(probes, n_workers=8, n_keys=800):
        ring = MultiProbeHashRing(probes=probes)
        for i in range(n_workers):
            ring.add_worker(f"w{i}")
        counts = ring.load_distribution(keys(n_keys))
        expected = n_keys / n_workers
        return max(counts.values()) / expected

    def test_more_probes_tighter_balance(self):
        # One probe degenerates to classic single-point consistent
        # hashing (arc lengths vary wildly); 21 probes should cut the
        # worst worker's overload substantially.
        assert self._spread(21) < self._spread(1)

    def test_default_probe_peak_bounded(self):
        assert self._spread(21) < 2.0

    @pytest.mark.parametrize("probes", [1, 5, 21, 64])
    def test_every_probe_count_covers_all_workers(self, probes):
        ring = MultiProbeHashRing(probes=probes)
        for i in range(6):
            ring.add_worker(f"w{i}")
        counts = ring.load_distribution(keys(1200))
        assert set(counts) == {f"w{i}" for i in range(6)}
        assert all(v > 0 for v in counts.values())


class TestMinimalMovement:
    def test_remove_moves_about_one_over_n(self):
        ring = MultiProbeHashRing()
        for i in range(6):
            ring.add_worker(f"w{i}")
        before = ring.assignment(keys(600))
        ring.remove_worker("w3")
        after = ring.assignment(keys(600))
        moved = sum(1 for k in before if before[k] != after[k])
        # Exactly the victim's keys move, nothing else: ideal 1/6.
        assert moved == sum(1 for k in before if before[k] == "w3")
        assert 0.03 < moved / 600 < 0.4

    def test_sequential_growth_cumulative_movement(self):
        """Growing 2 → 8 one worker at a time never reshuffles keys that
        both sides of a step still host."""
        ring = MultiProbeHashRing()
        ring.add_worker("w0")
        ring.add_worker("w1")
        snapshot = ring.assignment(keys(400))
        for i in range(2, 8):
            ring.add_worker(f"w{i}")
            current = ring.assignment(keys(400))
            for key, owner in snapshot.items():
                if current[key] != owner:
                    assert current[key] == f"w{i}"
            snapshot = current


class TestSeededChurn:
    """Determinism under membership churn: the ring is a pure function
    of its member set, regardless of arrival order or history."""

    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=9)),
            min_size=1, max_size=30,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_history_independent(self, ops):
        churned = MultiProbeHashRing()
        members = set()
        for add, idx in ops:
            name = f"w{idx}"
            if add:
                churned.add_worker(name)
                members.add(name)
            else:
                churned.remove_worker(name)
                members.discard(name)
        fresh = MultiProbeHashRing()
        for name in sorted(members):
            fresh.add_worker(name)
        probe_keys = keys(60)
        if not members:
            with pytest.raises(NoWorkersError):
                churned.assign("seg")
            return
        assert churned.assignment(probe_keys) == fresh.assignment(probe_keys)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_seeded_replay_is_identical(self, seed):
        import random

        def replay():
            rng = random.Random(seed)
            ring = MultiProbeHashRing()
            members = set()
            for _ in range(40):
                name = f"w{rng.randrange(12)}"
                if name in members and rng.random() < 0.4:
                    ring.remove_worker(name)
                    members.discard(name)
                else:
                    ring.add_worker(name)
                    members.add(name)
            if not members:
                ring.add_worker("w0")
            return ring.assignment(keys(80))

        assert replay() == replay()
