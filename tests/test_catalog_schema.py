"""Tests for table schemas and column types."""

import numpy as np
import pytest

from repro.catalog.schema import ColumnType, TableSchema, column_type_from_ddl
from repro.errors import SchemaError
from repro.sqlparser.ast_nodes import ColumnDef
from repro.vindex.registry import IndexSpec


def coldefs():
    return [
        ColumnDef("id", "UInt64"),
        ColumnDef("label", "String"),
        ColumnDef("embedding", "Array", ("Float32",)),
    ]


class TestColumnTypes:
    def test_ddl_mapping(self):
        assert column_type_from_ddl("UInt64") is ColumnType.UINT64
        assert column_type_from_ddl("string") is ColumnType.STRING
        assert column_type_from_ddl("DateTime") is ColumnType.DATETIME
        assert column_type_from_ddl("Array", ("Float32",)) is ColumnType.VECTOR

    def test_unsupported_type(self):
        with pytest.raises(SchemaError):
            column_type_from_ddl("UUID")

    def test_unsupported_array_element(self):
        with pytest.raises(SchemaError):
            column_type_from_ddl("Array", ("String",))

    def test_is_numeric(self):
        assert ColumnType.UINT64.is_numeric
        assert ColumnType.DATETIME.is_numeric
        assert not ColumnType.STRING.is_numeric
        assert not ColumnType.VECTOR.is_numeric


class TestFromDDL:
    def test_builds_schema(self):
        spec = IndexSpec(index_type="FLAT", dim=8, column="embedding")
        schema = TableSchema.from_ddl("t", coldefs(), index_spec=spec)
        assert schema.vector_column == "embedding"
        assert schema.vector_dim == 8
        assert schema.scalar_columns == ["id", "label"]

    def test_duplicate_column_rejected(self):
        defs = coldefs() + [ColumnDef("id", "Int64")]
        with pytest.raises(SchemaError):
            TableSchema.from_ddl("t", defs)

    def test_two_vector_columns_rejected(self):
        defs = coldefs() + [ColumnDef("v2", "Array", ("Float32",))]
        with pytest.raises(SchemaError):
            TableSchema.from_ddl("t", defs)

    def test_index_without_vector_column_rejected(self):
        spec = IndexSpec(index_type="FLAT", dim=8, column="embedding")
        with pytest.raises(SchemaError):
            TableSchema.from_ddl("t", [ColumnDef("id", "UInt64")], index_spec=spec)

    def test_index_wrong_column_rejected(self):
        spec = IndexSpec(index_type="FLAT", dim=8, column="other")
        with pytest.raises(SchemaError):
            TableSchema.from_ddl("t", coldefs(), index_spec=spec)

    def test_cluster_by_must_be_vector(self):
        with pytest.raises(SchemaError):
            TableSchema.from_ddl("t", coldefs(), cluster_by="label", cluster_buckets=4)

    def test_order_by_unknown_column(self):
        with pytest.raises(SchemaError):
            TableSchema.from_ddl("t", coldefs(), order_by=["ghost"])


class TestRowValidation:
    @pytest.fixture
    def schema(self):
        spec = IndexSpec(index_type="FLAT", dim=4, column="embedding")
        return TableSchema.from_ddl("t", coldefs(), index_spec=spec)

    def test_valid_row(self, schema):
        row = schema.validate_row(
            {"id": 1, "label": "x", "embedding": [0.0, 1.0, 2.0, 3.0]}
        )
        assert isinstance(row["embedding"], np.ndarray)
        assert row["embedding"].dtype == np.float32

    def test_missing_column(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "label": "x"})

    def test_extra_column(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row(
                {"id": 1, "label": "x", "embedding": [0] * 4, "ghost": 1}
            )

    def test_wrong_vector_length(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "label": "x", "embedding": [0.0] * 3})

    def test_type_mismatches(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row({"id": "str", "label": "x", "embedding": [0] * 4})
        with pytest.raises(SchemaError):
            schema.validate_row({"id": 1, "label": 7, "embedding": [0] * 4})

    def test_unsigned_negative_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.validate_row({"id": -1, "label": "x", "embedding": [0] * 4})

    def test_finalize_columns_dtypes(self, schema):
        scalars, _ = schema.empty_columns()
        scalars["id"].extend([1, 2])
        scalars["label"].extend(["a", "b"])
        out = schema.finalize_columns(scalars)
        assert out["id"].dtype == np.uint64
        assert out["label"] == ["a", "b"]
