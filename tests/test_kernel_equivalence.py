"""Fast-vs-reference kernel equivalence and the DESIGN §9 boundary contract.

The vectorized "fast" kernels (CSR neighbor gather, cached ADC tables,
allocation-free probe loops) must be *byte-identical* to the reference
per-node kernels: same ids in the same order, and bit-equal float64
distances at the result boundary.  These tests pin that invariant across
every index type, including the delete-bitmap and ``AS OF`` snapshot
paths, plus adversarial tie/zero-norm inputs via hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.database import BlendHouse
from repro.errors import IndexParameterError
from repro.vindex.api import kernel_mode, pairwise_distance
from repro.vindex.hnsw import HNSWIndex
from repro.vindex.ivfpq import IVFPQIndex
from repro.vindex.pq import ProductQuantizer
from repro.vindex.registry import IndexSpec, create_index

from tests.helpers import vector_sql

INDEX_TYPES = ["FLAT", "IVFFLAT", "IVFPQ", "IVFPQFS", "HNSW", "HNSWSQ", "DISKANN"]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(400, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def queries(data):
    rng = np.random.default_rng(8)
    picks = rng.choice(data.shape[0], 8, replace=False)
    return data[picks] + rng.normal(scale=0.05, size=(8, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def built(data):
    # Graph construction is mode-independent (build-time kernels always
    # use the norms form; DiskANN pins reference greedy search while
    # building), so one build serves both modes.
    out = {}
    for name in INDEX_TYPES:
        params = {"m": 4} if name.startswith("IVFPQ") else {}
        index = create_index(IndexSpec(index_type=name, dim=16, params=params))
        index.train(data)
        index.add_with_ids(data, np.arange(data.shape[0]))
        out[name] = index
    return out


def assert_byte_identical(fast, ref):
    assert fast.ids.dtype == ref.ids.dtype
    assert fast.distances.dtype == ref.distances.dtype == np.float64
    assert fast.ids.tobytes() == ref.ids.tobytes()
    assert fast.distances.tobytes() == ref.distances.tobytes()


def both_modes(index, query, k, **params):
    with kernel_mode("fast"):
        fast = index.search_with_filter(query, k, **params)
    with kernel_mode("reference"):
        ref = index.search_with_filter(query, k, **params)
    return fast, ref


@pytest.mark.parametrize("name", INDEX_TYPES)
class TestFastReferenceIdentity:
    def test_topk_byte_identical(self, built, queries, name):
        for query in queries:
            fast, ref = both_modes(built[name], query, 10)
            assert_byte_identical(fast, ref)
            assert fast.visited == ref.visited

    def test_delete_bitmap_path_byte_identical(self, built, data, queries, name):
        # The executor models delete bitmaps as an allowed-rows bitset.
        bitset = np.ones(data.shape[0], dtype=bool)
        bitset[::3] = False
        for query in queries:
            fast, ref = both_modes(built[name], query, 10, bitset=bitset)
            assert_byte_identical(fast, ref)

    def test_sparse_filter_byte_identical(self, built, data, queries, name):
        bitset = np.zeros(data.shape[0], dtype=bool)
        bitset[100:140] = True
        fast, ref = both_modes(built[name], queries[0], 5, bitset=bitset)
        assert_byte_identical(fast, ref)


class TestDepthKnobs:
    def test_hnsw_ef_sweep_byte_identical(self, built, queries):
        for ef in (10, 32, 128):
            fast, ref = both_modes(built["HNSW"], queries[0], 10, ef_search=ef)
            assert_byte_identical(fast, ref)

    def test_hnswsq_ef_sweep_byte_identical(self, built, queries):
        for ef in (10, 32, 128):
            fast, ref = both_modes(built["HNSWSQ"], queries[0], 10, ef_search=ef)
            assert_byte_identical(fast, ref)

    def test_ivfpq_nprobe_sweep_byte_identical(self, built, queries):
        for nprobe in (1, 4, 16):
            fast, ref = both_modes(built["IVFPQ"], queries[0], 10, nprobe=nprobe)
            assert_byte_identical(fast, ref)

    def test_ivfpq_lut_cache_reuse_is_transparent(self, built, queries):
        # Repeating the same query must serve the ADC tables from the
        # per-index LUT cache without changing a single byte.
        index = built["IVFPQ"]
        with kernel_mode("fast"):
            first = index.search_with_filter(queries[0], 10, nprobe=8)
            index._lut_cache.clear()
            cold = index.search_with_filter(queries[0], 10, nprobe=8)
            warm = index.search_with_filter(queries[0], 10, nprobe=8)
        assert_byte_identical(cold, first)
        assert_byte_identical(warm, cold)


class TestAdversarialInputs:
    @given(seed=st.integers(0, 2**31 - 1), dup=st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_ties_and_zero_norms_byte_identical(self, seed, dup):
        # Duplicated rows force exact distance ties; zero rows and a
        # zero query exercise the zero-norm corner of the L2 kernels.
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(20, 8)).astype(np.float32)
        data = np.concatenate(
            [np.repeat(base, dup, axis=0), np.zeros((3, 8), dtype=np.float32)]
        )
        flat = create_index(IndexSpec(index_type="FLAT", dim=8))
        flat.add_with_ids(data, np.arange(data.shape[0]))
        hnsw = HNSWIndex(dim=8, m=8, ef_construction=32, seed=0)
        hnsw.add_with_ids(data, np.arange(data.shape[0]))
        probes = [
            np.zeros(8, dtype=np.float32),  # zero-norm query
            data[0],                        # lands on a duplicate cluster
            rng.normal(size=8).astype(np.float32),
        ]
        for index in (flat, hnsw):
            for query in probes:
                fast, ref = both_modes(index, query, 10, ef_search=64)
                assert_byte_identical(fast, ref)
                assert not np.isnan(fast.distances).any()


class TestBoundaryContract:
    """DESIGN §9: float32 compute through the final sqrt, float64 only at
    the result boundary — so every index reports bit-identical distances
    for the same physical rows."""

    def test_hnsw_matches_flat_bitwise(self, built, data, queries):
        # ef_search = ntotal makes the graph search exact on this scale.
        for query in queries:
            exact = built["FLAT"].search_with_filter(query, 10)
            graph = built["HNSW"].search_with_filter(
                query, 10, ef_search=data.shape[0]
            )
            assert graph.ids.tobytes() == exact.ids.tobytes()
            assert graph.distances.tobytes() == exact.distances.tobytes()

    def test_flat_matches_pairwise_distance(self, built, data, queries):
        result = built["FLAT"].search_with_filter(queries[0], 5)
        expected = pairwise_distance(queries[0], data[result.ids], "l2")
        assert result.distances.tobytes() == np.asarray(
            expected, dtype=np.float64
        ).tobytes()

    def test_distances_are_float64_at_boundary(self, built, queries):
        for name in INDEX_TYPES:
            result = built[name].search_with_filter(queries[0], 5)
            assert result.distances.dtype == np.float64, name


class TestPQCodeGuard:
    def test_oversized_codebook_rejected_loudly(self):
        # uint8 codes silently wrap past 255 — encode must refuse instead.
        rng = np.random.default_rng(3)
        pq = ProductQuantizer(dim=8, m=2, nbits=8)
        pq.train(rng.normal(size=(300, 8)).astype(np.float32))
        pq._codebooks = np.zeros((2, 300, 4), dtype=np.float32)
        with pytest.raises(IndexParameterError, match="at most 256"):
            pq.encode(rng.normal(size=(5, 8)).astype(np.float32))

    def test_in_range_codebook_still_encodes(self):
        rng = np.random.default_rng(4)
        pq = ProductQuantizer(dim=8, m=2, nbits=8)
        pq.train(rng.normal(size=(300, 8)).astype(np.float32))
        codes = pq.encode(rng.normal(size=(5, 8)).astype(np.float32))
        assert codes.dtype == np.uint8 and codes.shape == (5, 2)


class TestIVFPQEmptyProbes:
    def test_fully_filtered_probes_return_empty(self, built, data, queries):
        bitset = np.zeros(data.shape[0], dtype=bool)  # everything deleted
        for mode in ("fast", "reference"):
            with kernel_mode(mode):
                result = built["IVFPQ"].search_with_filter(
                    queries[0], 10, bitset=bitset
                )
            assert len(result) == 0
            assert result.ids.dtype == np.int64
            assert result.visited > 0  # probed cells are still charged

    def test_empty_index_returns_empty(self):
        rng = np.random.default_rng(5)
        index = IVFPQIndex(dim=8, nlist=4, m=2)
        index.train(rng.normal(size=(200, 8)).astype(np.float32))
        result = index.search_with_filter(np.zeros(8, dtype=np.float32), 10)
        assert len(result) == 0 and result.visited == 0


def _engine(rng, n=300):
    db = BlendHouse()
    db.execute(
        "CREATE TABLE docs (id UInt64, label String, "
        "embedding Array(Float32), INDEX ann embedding TYPE HNSW('DIM=16'))"
    )
    rows = [
        {
            "id": i,
            "label": ["news", "sports", "tech"][i % 3],
            "embedding": rng.normal(size=16).astype(np.float32),
        }
        for i in range(n)
    ]
    db.insert_rows("docs", rows)
    return db, rows


def _topk_sql(query, k=10, suffix="", where=""):
    where_text = f"WHERE {where} " if where else ""
    return (
        f"SELECT id, dist FROM docs{suffix} {where_text}"
        f"ORDER BY L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {k}"
    )


class TestEngineModesAgree:
    """End-to-end: the full SQL path (delete bitmaps, AS OF snapshots)
    returns identical rows under both kernel modes."""

    def test_delete_bitmap_query_identical(self, rng):
        db, rows = _engine(rng)
        db.execute("DELETE FROM docs WHERE id < 50")
        sql = _topk_sql(rows[60]["embedding"])
        with kernel_mode("fast"):
            fast = db.execute(sql).rows
        with kernel_mode("reference"):
            ref = db.execute(sql).rows
        assert fast == ref
        assert all(row[0] >= 50 for row in fast)

    def test_as_of_snapshot_query_identical(self, rng):
        db, rows = _engine(rng)
        pinned = db.table("docs").manager.manifest_id
        db.execute("DELETE FROM docs WHERE id = 17")
        sql = _topk_sql(rows[17]["embedding"], k=1, suffix=f" AS OF {pinned}")
        with kernel_mode("fast"):
            fast = db.execute(sql).rows
        with kernel_mode("reference"):
            ref = db.execute(sql).rows
        assert fast == ref
        assert fast[0][0] == 17  # the snapshot still sees the deleted row


class TestPlanRebind:
    """The rebind fast path must be invisible except in planning cost."""

    def test_rebind_hit_counted_and_identical_to_uncached(self, rng):
        db, rows = _engine(rng)
        first = db.execute(_topk_sql(rows[5]["embedding"])).rows
        assert db.export_metrics().counter("planner.rebinds") == 0
        again = db.execute(_topk_sql(rows[5]["embedding"])).rows
        assert db.export_metrics().counter("planner.rebinds") == 1
        assert again == first
        # Fresh literals reuse the cached template (shape keying) ...
        other = db.execute(_topk_sql(rows[6]["embedding"])).rows
        assert db.export_metrics().counter("planner.rebinds") == 2
        # ... and match a cache-disabled run exactly.
        db.execute("SET enable_plan_cache = 0")
        assert db.execute(_topk_sql(rows[6]["embedding"])).rows == other

    def test_set_ef_search_honoured_after_rebind(self, rng):
        db, rows = _engine(rng)
        query = rows[40]["embedding"]
        db.execute(_topk_sql(query))  # miss, caches the template
        db.execute("SET ef_search = 300")  # no cache fence
        result = db.execute(_topk_sql(query, k=5))
        assert db.export_metrics().counter("planner.rebinds") >= 1
        # ef_search=300 ≥ ntotal → the rebound plan must be exact.
        expected = sorted(
            (float(np.linalg.norm(r["embedding"] - query)), r["id"]) for r in rows
        )[:5]
        assert [row[0] for row in result.rows] == [rid for _, rid in expected]

    def test_cbo_plans_are_not_rebound(self, rng):
        db, rows = _engine(rng)
        sql = _topk_sql(rows[3]["embedding"], where="label = 'news'")
        db.execute(sql)
        hits_before = db.export_metrics().counter("plan_cache.hits")
        db.execute(sql)
        # The hybrid plan is CBO-costed: it hits the cache but re-runs
        # the optimizer so literal selectivity can still flip strategy.
        assert db.export_metrics().counter("plan_cache.hits") == hits_before + 1
        assert db.export_metrics().counter("planner.rebinds") == 0

    def test_forced_strategy_disables_rebind(self, rng):
        db, rows = _engine(rng)
        db.execute("SET forced_strategy = 'brute_force'")
        sql = _topk_sql(rows[8]["embedding"])
        db.execute(sql)
        db.execute(sql)
        assert db.export_metrics().counter("planner.rebinds") == 0
