"""Tests for k-means."""

import numpy as np
import pytest

from repro.vindex.kmeans import KMeansResult, assign_to_centroids, kmeans


def blobs(k=4, per=50, dim=8, seed=0, spread=5.0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=spread, size=(k, dim)).astype(np.float32)
    points = np.vstack(
        [c + rng.normal(scale=0.2, size=(per, dim)).astype(np.float32) for c in centers]
    )
    return points, centers


class TestFit:
    def test_recovers_separated_clusters(self):
        points, _ = blobs(k=4)
        result = kmeans(points, 4, seed=1)
        # Each true blob should map to exactly one fitted cluster.
        for blob in range(4):
            labels = result.assignments[blob * 50 : (blob + 1) * 50]
            assert len(np.unique(labels)) == 1

    def test_result_shapes(self):
        points, _ = blobs()
        result = kmeans(points, 4)
        assert isinstance(result, KMeansResult)
        assert result.centroids.shape == (4, 8)
        assert result.assignments.shape == (200,)
        assert result.inertia >= 0

    def test_deterministic_under_seed(self):
        points, _ = blobs()
        a = kmeans(points, 4, seed=7)
        b = kmeans(points, 4, seed=7)
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_k_equals_n(self):
        points = np.eye(5, dtype=np.float32)
        result = kmeans(points, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-6)

    def test_k_one(self):
        points, _ = blobs()
        result = kmeans(points, 1)
        np.testing.assert_allclose(
            result.centroids[0], points.mean(axis=0), rtol=1e-4, atol=1e-4
        )

    def test_duplicate_points_no_crash(self):
        points = np.ones((20, 4), dtype=np.float32)
        result = kmeans(points, 3, seed=0)
        assert result.assignments.shape == (20,)


class TestValidation:
    def test_k_too_large(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2), dtype=np.float32), 4)

    def test_k_nonpositive(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2), dtype=np.float32), 0)

    def test_points_must_be_2d(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5, dtype=np.float32), 2)


class TestAssign:
    def test_assign_to_centroids_nearest(self):
        centroids = np.array([[0, 0], [10, 10]], dtype=np.float32)
        points = np.array([[1, 1], [9, 9], [0.2, -0.1]], dtype=np.float32)
        np.testing.assert_array_equal(
            assign_to_centroids(points, centroids), [0, 1, 0]
        )

    def test_assignments_match_inertia(self):
        points, _ = blobs()
        result = kmeans(points, 4, seed=3)
        recomputed = assign_to_centroids(points, result.centroids)
        np.testing.assert_array_equal(recomputed, result.assignments)
