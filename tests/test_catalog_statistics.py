"""Tests for histogram statistics and selectivity estimation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.statistics import EquiWidthHistogram, StringStats, TableStatistics
from repro.sqlparser.parser import parse_statement


def predicate(text):
    return parse_statement(f"SELECT id FROM t WHERE {text}").where


class TestHistogram:
    def test_uniform_range_estimate(self):
        values = np.arange(0, 1000)
        hist = EquiWidthHistogram.build(values)
        assert hist.selectivity_range(0, 499) == pytest.approx(0.5, abs=0.05)

    def test_out_of_domain_is_zero(self):
        hist = EquiWidthHistogram.build(np.arange(100))
        assert hist.selectivity_range(1000, 2000) == 0.0
        assert hist.selectivity_eq(-5) == 0.0

    def test_open_bounds(self):
        hist = EquiWidthHistogram.build(np.arange(100))
        assert hist.selectivity_range(None, None) == pytest.approx(1.0, abs=0.01)

    def test_eq_uses_distinct_count(self):
        values = np.repeat(np.arange(10), 10)
        hist = EquiWidthHistogram.build(values)
        assert hist.selectivity_eq(3) == pytest.approx(0.1)

    def test_empty_and_constant_columns(self):
        empty = EquiWidthHistogram.build(np.array([]))
        assert empty.selectivity_range(0, 1) == 0.0
        constant = EquiWidthHistogram.build(np.full(10, 7.0))
        assert constant.selectivity_range(7, 7) >= 0.0

    @given(
        values=st.lists(st.integers(min_value=0, max_value=100), min_size=20, max_size=200),
        low=st.integers(min_value=0, max_value=100),
        width=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_estimate_close_to_truth(self, values, low, width):
        """Histogram range estimates stay within a coarse error bound of
        the true fraction (they are estimates, not counts).  Point
        queries (width 0) use the coarser equality model and are covered
        by the dedicated eq tests."""
        arr = np.array(values, dtype=np.float64)
        hist = EquiWidthHistogram.build(arr)
        high = low + width
        est = hist.selectivity_range(low, high)
        # Equi-width histograms with uniform-within-bin interpolation can
        # be arbitrarily wrong on adversarial point-mass data, so the
        # invariants are: a valid probability, monotone in range width,
        # and exact when the range covers the whole domain.
        assert 0.0 <= est <= 1.0
        wider = hist.selectivity_range(low, high + 10)
        assert wider >= est - 1e-9
        full = hist.selectivity_range(None, None)
        assert full == pytest.approx(1.0, abs=0.01)


class TestStringStats:
    def test_frequencies(self):
        stats = StringStats.build(["a", "a", "b", "c"])
        assert stats.selectivity_eq("a") == pytest.approx(0.5)
        assert stats.selectivity_eq("b") == pytest.approx(0.25)

    def test_unseen_value_rare(self):
        stats = StringStats.build(["a"] * 100)
        assert stats.selectivity_eq("zzz") <= 0.01

    def test_empty(self):
        assert StringStats.build([]).selectivity_eq("a") == 0.0


class TestTableStatistics:
    @pytest.fixture
    def stats(self):
        table_stats = TableStatistics()
        rng = np.random.default_rng(0)
        table_stats.refresh(
            {
                "views": rng.integers(0, 1000, size=2000),
                "label": [["news", "sports", "tech"][i % 3] for i in range(2000)],
            },
            2000,
        )
        return table_stats

    def test_none_predicate_is_one(self, stats):
        assert stats.estimate_selectivity(None) == 1.0

    def test_range_predicate(self, stats):
        sel = stats.estimate_selectivity(predicate("views < 500"))
        assert 0.4 < sel < 0.6

    def test_string_equality(self, stats):
        sel = stats.estimate_selectivity(predicate("label = 'news'"))
        assert 0.25 < sel < 0.42

    def test_and_multiplies(self, stats):
        sel = stats.estimate_selectivity(
            predicate("views < 500 AND label = 'news'")
        )
        assert 0.1 < sel < 0.25

    def test_or_inclusion_exclusion(self, stats):
        a = stats.estimate_selectivity(predicate("views < 500"))
        combined = stats.estimate_selectivity(
            predicate("views < 500 OR views >= 500")
        )
        assert combined >= a

    def test_not_complements(self, stats):
        sel = stats.estimate_selectivity(predicate("NOT views < 500"))
        assert 0.4 < sel < 0.6

    def test_between(self, stats):
        sel = stats.estimate_selectivity(predicate("views BETWEEN 100 AND 199"))
        assert 0.05 < sel < 0.16

    def test_in_list_sums(self, stats):
        single = stats.estimate_selectivity(predicate("label = 'news'"))
        double = stats.estimate_selectivity(predicate("label IN ('news', 'tech')"))
        assert double > single

    def test_flipped_comparison(self, stats):
        left = stats.estimate_selectivity(predicate("views < 500"))
        right = stats.estimate_selectivity(predicate("500 > views"))
        assert left == pytest.approx(right)

    def test_regex_default_guess(self, stats):
        sel = stats.estimate_selectivity(predicate("label REGEXP '^n'"))
        assert 0.0 < sel < 0.5

    def test_clamped_to_unit_interval(self, stats):
        sel = stats.estimate_selectivity(
            predicate("views < 10000 OR views < 9999 OR views < 9998")
        )
        assert 0.0 <= sel <= 1.0

    def test_function_wrapped_column(self, stats):
        sel = stats.estimate_selectivity(predicate("toYYYYMMDD(views) < 500"))
        assert 0.4 < sel < 0.6
