"""Metamorphic and safety properties of the whole engine.

These tests check invariants that must hold regardless of internal
layout decisions:

* **segmentation invariance** — query answers don't depend on how rows
  were cut into segments;
* **pruning safety** — scalar segment pruning never discards a segment
  containing a matching row;
* **update linearity** — a query after UPDATE sees exactly the new
  values, never both versions;
* **determinism** — identical engines given identical inputs return
  identical answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.database import BlendHouse
from repro.partition.pruning import prune_segments_scalar
from repro.sqlparser.parser import parse_statement
from repro.sqlparser.expressions import evaluate_predicate

from tests.helpers import vector_sql


def build_db(max_segment_rows, n=300, dim=8, seed=0, index="FLAT"):
    db = BlendHouse()
    db.execute(
        f"CREATE TABLE t (id UInt64, grp Int64, val Int64, "
        f"embedding Array(Float32), INDEX ann embedding TYPE {index}('DIM={dim}'))"
    )
    db.table("t").writer.config.max_segment_rows = max_segment_rows
    rng = np.random.default_rng(seed)
    db.insert_columns(
        "t",
        {
            "id": np.arange(n, dtype=np.uint64),
            "grp": rng.integers(0, 5, size=n).astype(np.int64),
            "val": rng.integers(0, 100, size=n).astype(np.int64),
        },
        rng.normal(size=(n, dim)).astype(np.float32),
    )
    return db


class TestSegmentationInvariance:
    @pytest.mark.parametrize("rows_per_segment", [40, 100, 1000])
    def test_vector_query_invariant(self, rows_per_segment):
        db = build_db(rows_per_segment)
        reference = build_db(1000)
        query = np.full(8, 0.2, dtype=np.float32)
        sql = (
            f"SELECT id, dist FROM t WHERE val < 70 ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT 10"
        )
        assert [r[0] for r in db.execute(sql).rows] == [
            r[0] for r in reference.execute(sql).rows
        ]

    @pytest.mark.parametrize("rows_per_segment", [40, 100])
    def test_scalar_query_invariant(self, rows_per_segment):
        db = build_db(rows_per_segment)
        reference = build_db(1000)
        sql = "SELECT id FROM t WHERE grp = 2 AND val >= 50 LIMIT 1000"
        assert sorted(r[0] for r in db.execute(sql).rows) == sorted(
            r[0] for r in reference.execute(sql).rows
        )

    def test_strategy_invariance(self):
        """All three hybrid strategies agree on an exact index."""
        db = build_db(60)
        query = np.full(8, -0.1, dtype=np.float32)
        sql = (
            f"SELECT id FROM t WHERE val < 60 ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT 8"
        )
        answers = {}
        for strategy in ("brute_force", "pre_filter", "post_filter"):
            db.execute(f"SET forced_strategy = '{strategy}'")
            answers[strategy] = [r[0] for r in db.execute(sql).rows]
        db.execute("SET forced_strategy = 'auto'")
        assert answers["brute_force"] == answers["pre_filter"] == answers["post_filter"]


class TestPruningSafety:
    @given(
        low=st.integers(min_value=0, max_value=99),
        width=st.integers(min_value=0, max_value=99),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=15, deadline=None)
    def test_pruned_segments_hold_no_matches(self, low, width, seed):
        """A segment discarded by scalar pruning contains no matching row."""
        db = build_db(30, n=200, seed=seed)
        manager = db.table("t").manager
        high = low + width
        predicate = parse_statement(
            f"SELECT id FROM t WHERE val >= {low} AND val <= {high}"
        ).where
        kept_ids = {m.segment_id for m in
                    prune_segments_scalar(manager.metas(), predicate)}
        for segment in manager.segments():
            if segment.segment_id in kept_ids:
                continue
            columns = {"val": segment.scalar_column("val")}
            mask = evaluate_predicate(predicate, columns, segment.row_count)
            assert not mask.any(), (
                f"pruned segment {segment.segment_id} had matching rows"
            )


class TestUpdateLinearity:
    def test_exactly_one_version_visible(self):
        db = build_db(50)
        for round_number in range(3):
            db.execute(f"UPDATE t SET val = {round_number + 200} WHERE id = 7")
            result = db.execute("SELECT id, val FROM t WHERE id = 7 LIMIT 10")
            assert len(result) == 1
            assert result.rows[0][1] == round_number + 200

    def test_delete_then_reinsert(self):
        db = build_db(50)
        db.execute("DELETE FROM t WHERE id = 3")
        assert len(db.execute("SELECT id FROM t WHERE id = 3 LIMIT 5")) == 0
        vec = vector_sql(np.zeros(8))
        db.execute(f"INSERT INTO t (id, grp, val, embedding) VALUES (3, 0, 1, {vec})")
        result = db.execute("SELECT id, val FROM t WHERE id = 3 LIMIT 5")
        assert [tuple(r) for r in result.rows] == [(3, 1)]

    def test_compaction_preserves_answers(self):
        db = build_db(30)
        db.execute("UPDATE t SET val = 999 WHERE grp = 1")
        query = np.full(8, 0.3, dtype=np.float32)
        sql = (
            f"SELECT id FROM t WHERE val = 999 ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT 20"
        )
        before = [r[0] for r in db.execute(sql).rows]
        db.compact("t")
        after = [r[0] for r in db.execute(sql).rows]
        assert before == after


class TestDeterminism:
    def test_identical_engines_identical_answers(self):
        a = build_db(60, seed=4, index="HNSW")
        b = build_db(60, seed=4, index="HNSW")
        query = np.full(8, 0.15, dtype=np.float32)
        sql = (
            f"SELECT id, dist FROM t ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT 10"
        )
        assert a.execute(sql).rows == b.execute(sql).rows

    def test_simulated_time_deterministic(self):
        a = build_db(60, seed=4)
        b = build_db(60, seed=4)
        sql = "SELECT id FROM t WHERE val < 10 LIMIT 100"
        a.execute(sql)
        b.execute(sql)
        assert a.clock.now == pytest.approx(b.clock.now)
