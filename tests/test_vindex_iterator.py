"""Tests for the generic restart iterator."""

import numpy as np
import pytest

from repro.errors import IndexParameterError
from repro.vindex.flat import FlatIndex
from repro.vindex.iterator import GenericRestartIterator


@pytest.fixture
def index(vectors):
    idx = FlatIndex(dim=16)
    idx.add_with_ids(vectors, np.arange(vectors.shape[0]))
    return idx


class TestStreaming:
    def test_batches_ordered_globally(self, index, vectors):
        iterator = GenericRestartIterator(index, vectors[0], batch_size=10)
        distances = []
        for _ in range(5):
            distances.extend(iterator.next_batch().distances.tolist())
        assert distances == sorted(distances)

    def test_no_duplicates(self, index, vectors):
        iterator = GenericRestartIterator(index, vectors[0], batch_size=16)
        ids = []
        for _ in range(8):
            ids.extend(iterator.next_batch().ids.tolist())
        assert len(ids) == len(set(ids))

    def test_repeated_prefix_identical(self, index, vectors):
        """The wrapper relies on repeated runs returning identical results
        for the same k (the paper notes this explicitly)."""
        a = GenericRestartIterator(index, vectors[0], batch_size=5)
        b = GenericRestartIterator(index, vectors[0], batch_size=5)
        for _ in range(4):
            np.testing.assert_array_equal(a.next_batch().ids, b.next_batch().ids)

    def test_doubling_restart_count(self, index, vectors):
        iterator = GenericRestartIterator(index, vectors[0], batch_size=10)
        for _ in range(8):  # need 80 rows: k goes 10→20→40→80
            iterator.next_batch()
        assert iterator.restarts == 4

    def test_redundant_visits_accumulate(self, index, vectors):
        """Each restart rescans from scratch — the overhead the native
        iterator avoids."""
        iterator = GenericRestartIterator(index, vectors[0], batch_size=10)
        for _ in range(4):
            iterator.next_batch()
        assert iterator.visited_total >= 2 * vectors.shape[0]


class TestExhaustion:
    def test_exhausts_after_all_rows(self, vectors):
        idx = FlatIndex(dim=16)
        idx.add_with_ids(vectors[:30], np.arange(30))
        iterator = GenericRestartIterator(idx, vectors[0], batch_size=8)
        total = []
        for _ in range(20):
            if iterator.exhausted:
                break
            batch = iterator.next_batch()
            if len(batch) == 0:
                break
            total.extend(batch.ids.tolist())
        assert sorted(total) == list(range(30))
        assert iterator.exhausted

    def test_empty_index_immediately_exhausted(self):
        idx = FlatIndex(dim=4)
        iterator = GenericRestartIterator(idx, np.zeros(4, dtype=np.float32))
        assert iterator.exhausted

    def test_bitset_limits_stream(self, index, vectors):
        bitset = np.zeros(vectors.shape[0], dtype=bool)
        bitset[:7] = True
        iterator = GenericRestartIterator(index, vectors[0], bitset=bitset, batch_size=5)
        total = []
        for _ in range(10):
            if iterator.exhausted:
                break
            batch = iterator.next_batch()
            if len(batch) == 0:
                break
            total.extend(batch.ids.tolist())
        assert sorted(total) == list(range(7))


class TestValidation:
    def test_bad_batch_size(self, index, vectors):
        with pytest.raises(IndexParameterError):
            GenericRestartIterator(index, vectors[0], batch_size=0)

    def test_for_loop_protocol(self, index, vectors):
        iterator = GenericRestartIterator(index, vectors[0], batch_size=64)
        batches = list(iterator)
        flat = [i for batch in batches for i in batch.ids.tolist()]
        assert sorted(flat) == list(range(vectors.shape[0]))
