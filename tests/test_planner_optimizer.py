"""Tests for the cost-based optimizer."""

import numpy as np
import pytest

from repro.catalog.schema import TableSchema
from repro.catalog.statistics import TableStatistics
from repro.planner.cost import CostModelParams
from repro.planner.logical import bind_select
from repro.planner.optimizer import (
    ExecutionStrategy,
    Optimizer,
    OptimizerConfig,
    estimate_visit_fraction,
)
from repro.simulate.costmodel import DeviceCostModel
from repro.sqlparser.ast_nodes import ColumnDef
from repro.sqlparser.parser import parse_statement
from repro.vindex.registry import IndexSpec

VEC = "[1.0, 0.0, 0.0, 0.0]"


@pytest.fixture
def schema():
    return TableSchema.from_ddl(
        "docs",
        [
            ColumnDef("id", "UInt64"),
            ColumnDef("views", "UInt64"),
            ColumnDef("embedding", "Array", ("Float32",)),
        ],
        index_spec=IndexSpec(index_type="HNSW", dim=4, column="embedding"),
    )


@pytest.fixture
def stats():
    table_stats = TableStatistics()
    rng = np.random.default_rng(0)
    table_stats.refresh({"views": rng.integers(0, 1000, size=20_000)}, 20_000)
    return table_stats


def optimizer(**config):
    params = CostModelParams.from_device_model(DeviceCostModel(), 4)
    return Optimizer(params, OptimizerConfig(prefilter_row_threshold=1000, **config))


def choose(sql, schema, stats, opt=None):
    logical = bind_select(parse_statement(sql), schema)
    return (opt or optimizer()).choose(logical, stats, schema.index_spec)


class TestStrategySelection:
    def test_scalar_only(self, schema, stats):
        plan = choose("SELECT id FROM docs WHERE views < 10 LIMIT 3", schema, stats)
        assert plan.strategy is ExecutionStrategy.SCALAR_ONLY

    def test_ann_only_short_circuits(self, schema, stats):
        plan = choose(
            f"SELECT id FROM docs ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats,
        )
        assert plan.strategy is ExecutionStrategy.ANN_ONLY
        assert plan.short_circuited

    def test_range_strategy(self, schema, stats):
        plan = choose(
            f"SELECT id FROM docs WHERE L2Distance(embedding, {VEC}) < 0.5",
            schema, stats,
        )
        assert plan.strategy is ExecutionStrategy.RANGE

    def test_brute_force_at_tiny_pass_rate(self, schema, stats):
        plan = choose(
            f"SELECT id FROM docs WHERE views < 5 "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats,
        )
        assert plan.strategy is ExecutionStrategy.BRUTE_FORCE
        assert plan.estimated_selectivity < 0.05

    def test_post_filter_at_high_pass_rate(self, schema, stats):
        plan = choose(
            f"SELECT id FROM docs WHERE views < 995 "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats,
        )
        assert plan.strategy is ExecutionStrategy.POST_FILTER

    def test_estimated_costs_recorded(self, schema, stats):
        plan = choose(
            f"SELECT id FROM docs WHERE views < 500 "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats,
        )
        assert set(plan.estimated_costs) == {"A", "B", "C"}
        assert plan.cbo_used

    def test_prefilter_threshold_excludes_plan_b(self, schema, stats):
        # ~1% of 20k rows = 200 < threshold 1000 → B must not be chosen
        # even if its formula cost were minimal.
        plan = choose(
            f"SELECT id FROM docs WHERE views < 10 "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats,
        )
        assert plan.strategy is not ExecutionStrategy.PRE_FILTER


class TestOverridesAndSwitches:
    def test_cbo_disabled_defaults_to_prefilter(self, schema, stats):
        opt = optimizer(enable_cbo=False)
        plan = choose(
            f"SELECT id FROM docs WHERE views < 995 "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats, opt,
        )
        assert plan.strategy is ExecutionStrategy.PRE_FILTER
        assert not plan.cbo_used

    def test_forced_strategy(self, schema, stats):
        opt = optimizer(forced_strategy=ExecutionStrategy.POST_FILTER)
        plan = choose(
            f"SELECT id FROM docs WHERE views < 5 "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats, opt,
        )
        assert plan.strategy is ExecutionStrategy.POST_FILTER

    def test_search_param_override(self, schema, stats):
        logical = bind_select(
            parse_statement(
                f"SELECT id FROM docs ORDER BY L2Distance(embedding, {VEC}) LIMIT 5"
            ),
            schema,
        )
        plan = optimizer().choose(
            logical, stats, schema.index_spec, search_params={"ef_search": 999}
        )
        assert plan.search_params["ef_search"] == 999

    def test_default_params_by_index_family(self, stats):
        ivf_schema = TableSchema.from_ddl(
            "t",
            [ColumnDef("id", "UInt64"), ColumnDef("embedding", "Array", ("Float32",))],
            index_spec=IndexSpec(index_type="IVFFLAT", dim=4, column="embedding"),
        )
        plan = choose(
            f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            ivf_schema, stats,
        )
        assert "nprobe" in plan.search_params

    def test_rebound_preserves_strategy(self, schema, stats):
        plan = choose(
            f"SELECT id FROM docs WHERE views < 995 "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema, stats,
        )
        logical2 = bind_select(
            parse_statement(
                f"SELECT id FROM docs WHERE views < 990 "
                f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5"
            ),
            schema,
        )
        rebound = plan.rebound(logical2)
        assert rebound.strategy is plan.strategy
        assert rebound.logical is logical2


class TestVisitFraction:
    def test_graph_fraction_scales_with_ef(self):
        spec = IndexSpec(index_type="HNSW", dim=8)
        small = estimate_visit_fraction(spec, {"ef_search": 10}, 10_000, 10)
        large = estimate_visit_fraction(spec, {"ef_search": 100}, 10_000, 10)
        assert large > small

    def test_ivf_fraction_is_probe_ratio(self):
        spec = IndexSpec(index_type="IVFFLAT", dim=8, params={"nlist": 100})
        assert estimate_visit_fraction(spec, {"nprobe": 10}, 10_000, 10) == pytest.approx(0.1)

    def test_no_index_full_scan(self):
        assert estimate_visit_fraction(None, {}, 100, 10) == 1.0

    def test_clamped_to_one(self):
        spec = IndexSpec(index_type="HNSW", dim=8)
        assert estimate_visit_fraction(spec, {"ef_search": 10_000}, 100, 10) == 1.0
