"""Tests for scalar-quantized HNSW."""

import numpy as np
import pytest

from repro.errors import IndexParameterError
from repro.vindex.hnsw import HNSWIndex
from repro.vindex.hnswsq import HNSWSQIndex


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    return rng.normal(size=(400, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def index(data):
    idx = HNSWSQIndex(dim=16, m=8, ef_construction=64, seed=0)
    idx.add_with_ids(data, np.arange(data.shape[0]))
    return idx


class TestQuantization:
    def test_lazy_training_on_first_add(self, data):
        idx = HNSWSQIndex(dim=16)
        assert not idx.is_trained
        idx.add_with_ids(data[:50], np.arange(50))
        assert idx.is_trained

    def test_explicit_train_empty_rejected(self):
        idx = HNSWSQIndex(dim=4)
        with pytest.raises(IndexParameterError):
            idx.train(np.empty((0, 4), dtype=np.float32))

    def test_memory_smaller_than_full_precision(self, data):
        full = HNSWIndex(dim=16, m=8, ef_construction=64, seed=0)
        full.add_with_ids(data, np.arange(data.shape[0]))
        sq = HNSWSQIndex(dim=16, m=8, ef_construction=64, seed=0)
        sq.add_with_ids(data, np.arange(data.shape[0]))
        assert sq.memory_bytes() < full.memory_bytes()

    def test_constant_dimension_handled(self):
        data = np.ones((50, 4), dtype=np.float32)
        data[:, 0] = np.arange(50)
        idx = HNSWSQIndex(dim=4, m=4, ef_construction=32)
        idx.add_with_ids(data, np.arange(50))
        result = idx.search_with_filter(data[10], 1, ef_search=32)
        assert result.ids[0] == 10


class TestQuality:
    def test_recall_close_to_full_precision(self, index, data):
        rng = np.random.default_rng(4)
        queries = data[rng.choice(len(data), 25, replace=False)] + 0.05
        hits = 0
        for q in queries:
            want = set(np.argsort(np.linalg.norm(data - q, axis=1))[:10].tolist())
            got = index.search_with_filter(q, 10, ef_search=80)
            hits += len(set(got.ids.tolist()) & want)
        assert hits / 250 > 0.75  # lossy, but far above random

    def test_quantization_error_visible(self, index, data):
        # Distances come from decoded vectors, so self-distance is small
        # but generally nonzero.
        result = index.search_with_filter(data[7], 1, ef_search=64)
        assert result.distances[0] < 0.5


class TestPersistence:
    def test_roundtrip(self, index, data):
        from repro.vindex.registry import deserialize_index, serialize_index

        restored = deserialize_index(serialize_index(index))
        assert isinstance(restored, HNSWSQIndex)
        a = index.search_with_filter(data[5], 5, ef_search=40)
        b = restored.search_with_filter(data[5], 5, ef_search=40)
        np.testing.assert_array_equal(a.ids, b.ids)
