"""Tests for the DiskANN (Vamana) index."""

import numpy as np
import pytest

from repro.errors import IndexParameterError
from repro.vindex.diskann import DiskANNIndex


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(9)
    return rng.normal(size=(400, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def index(data):
    idx = DiskANNIndex(dim=16, r=16, build_beam=32, seed=0)
    idx.add_with_ids(data, np.arange(data.shape[0]))
    return idx


class TestGraph:
    def test_degree_bounded(self, index):
        assert max(len(neighbors) for neighbors in index._graph) <= index.r

    def test_medoid_set(self, index, data):
        assert 0 <= index._medoid < len(data)

    def test_parameter_validation(self):
        with pytest.raises(IndexParameterError):
            DiskANNIndex(dim=8, r=1)
        with pytest.raises(IndexParameterError):
            DiskANNIndex(dim=8, alpha=0.5)


class TestSearch:
    def test_self_query(self, index, data):
        result = index.search_with_filter(data[3], 1, beam=32)
        assert result.ids[0] == 3

    def test_recall(self, index, data):
        rng = np.random.default_rng(2)
        queries = data[rng.choice(len(data), 20, replace=False)] + 0.03
        hits = 0
        for q in queries:
            want = set(np.argsort(np.linalg.norm(data - q, axis=1))[:10].tolist())
            got = index.search_with_filter(q, 10, beam=48)
            hits += len(set(got.ids.tolist()) & want)
        assert hits / 200 > 0.85

    def test_bitset(self, index, data):
        bitset = np.zeros(len(data), dtype=bool)
        bitset[::4] = True
        result = index.search_with_filter(data[0], 10, bitset=bitset, beam=48)
        assert all(i % 4 == 0 for i in result.ids.tolist())

    def test_distances_are_true_l2(self, index, data):
        query = data[0] + 0.1
        result = index.search_with_filter(query, 5, beam=48)
        expected = np.linalg.norm(data[result.ids[0]] - query)
        assert result.distances[0] == pytest.approx(expected, rel=1e-4)


class TestDiskModel:
    def test_io_charger_called(self, index, data):
        charged = []
        index.set_io_charger(lambda nbytes: charged.append(nbytes))
        index.search_with_filter(data[0], 5, beam=32)
        index.set_io_charger(None)
        assert charged, "beam search should report node reads"
        assert all(nbytes > 0 for nbytes in charged)

    def test_memory_tiny_vs_disk(self, index, data):
        # The RAM footprint is routing state only; the graph + vectors
        # are disk-resident.
        assert index.memory_bytes() < index.disk_bytes() / 10


class TestPersistence:
    def test_roundtrip(self, index, data):
        from repro.vindex.registry import deserialize_index, serialize_index

        restored = deserialize_index(serialize_index(index))
        a = index.search_with_filter(data[11], 5, beam=40)
        b = restored.search_with_filter(data[11], 5, beam=40)
        np.testing.assert_array_equal(a.ids, b.ids)
