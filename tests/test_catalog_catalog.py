"""Tests for the table catalog."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.errors import TableAlreadyExistsError, TableNotFoundError
from repro.sqlparser.ast_nodes import ColumnDef


def schema(name="t"):
    return TableSchema.from_ddl(
        name,
        [ColumnDef("id", "UInt64"), ColumnDef("v", "Array", ("Float32",))],
    )


class TestLifecycle:
    def test_create_and_get(self):
        catalog = Catalog()
        entry = catalog.create_table(schema())
        assert catalog.get("t") is entry
        assert "t" in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table(schema())
        with pytest.raises(TableAlreadyExistsError):
            catalog.create_table(schema())

    def test_if_not_exists_returns_existing(self):
        catalog = Catalog()
        first = catalog.create_table(schema())
        second = catalog.create_table(schema(), if_not_exists=True)
        assert first is second

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table(schema())
        assert catalog.drop_table("t")
        assert "t" not in catalog

    def test_drop_missing(self):
        catalog = Catalog()
        with pytest.raises(TableNotFoundError):
            catalog.drop_table("ghost")
        assert not catalog.drop_table("ghost", if_exists=True)

    def test_get_missing(self):
        with pytest.raises(TableNotFoundError):
            Catalog().get("ghost")

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.create_table(schema("zz"))
        catalog.create_table(schema("aa"))
        assert catalog.table_names() == ["aa", "zz"]


class TestEntry:
    def test_segment_id_allocation_unique(self):
        catalog = Catalog()
        entry = catalog.create_table(schema())
        ids = {entry.allocate_segment_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(sid.startswith("t/seg-") for sid in ids)
