"""Tests for the Equation (1)-(3) cost model."""

import pytest

from repro.planner.cost import (
    CostInputs,
    CostModelParams,
    cost_plan_a,
    cost_plan_b,
    cost_plan_c,
    plan_costs,
)
from repro.simulate.costmodel import DeviceCostModel


@pytest.fixture
def params():
    return CostModelParams.from_device_model(DeviceCostModel(), dim=768)


def inputs(n=1_000_000, s=0.5, k=100, beta=0.005, gamma=0.005):
    return CostInputs(n=n, s=s, k=k, beta=beta, gamma=gamma)


class TestEquations:
    def test_plan_a_formula(self, params):
        i = inputs(s=0.2)
        expected = i.n * params.t0_per_row + i.s * i.n * params.c_d
        assert cost_plan_a(i, params) == pytest.approx(expected)

    def test_plan_b_formula(self, params):
        i = inputs(s=0.5)
        t0 = i.n * params.t0_per_row
        scan = i.gamma * i.n * (1 / 0.5) * (params.c_p + 0.5 * params.c_c)
        refine = params.sigma * i.k * params.c_d
        assert cost_plan_b(i, params) == pytest.approx(t0 + scan + refine)

    def test_plan_c_formula(self, params):
        i = inputs(s=0.5)
        scan = i.beta * i.n * (1 / 0.5) * params.c_c
        refine = params.sigma * i.k * params.c_d
        assert cost_plan_c(i, params) == pytest.approx(scan + refine)

    def test_selectivity_floor_prevents_blowup(self, params):
        i = inputs(s=0.0)
        assert cost_plan_c(i, params) < float("inf")

    def test_plan_costs_keys(self, params):
        costs = plan_costs(inputs(), params)
        assert set(costs) == {"A", "B", "C"}
        assert all(v > 0 for v in costs.values())


class TestCrossoverShapes:
    """The qualitative regimes §V-B1 describes must fall out of the
    equations: brute force at tiny pass rates, post-filter at high ones.
    """

    def test_brute_force_wins_at_tiny_pass_rate(self, params):
        i = inputs(s=0.001)
        # Variable part of A shrinks with s; compare A's distance work
        # against C's amplified scan.
        assert i.s * i.n * params.c_d < cost_plan_c(i, params)

    def test_post_filter_wins_at_high_pass_rate(self, params):
        costs = plan_costs(inputs(s=0.99), params)
        assert costs["C"] < costs["A"]
        assert costs["C"] < costs["B"]

    def test_plan_a_monotone_in_s(self, params):
        low = cost_plan_a(inputs(s=0.1), params)
        high = cost_plan_a(inputs(s=0.9), params)
        assert high > low

    def test_plan_c_amplifies_as_s_drops(self, params):
        cheap = cost_plan_c(inputs(s=0.9), params)
        dear = cost_plan_c(inputs(s=0.05), params)
        assert dear > cheap

    def test_beta_scales_plan_c(self, params):
        narrow = cost_plan_c(inputs(beta=0.001), params)
        wide = cost_plan_c(inputs(beta=0.1), params)
        assert wide > narrow


class TestParams:
    def test_from_device_model_dimension_scaling(self):
        cost = DeviceCostModel()
        small = CostModelParams.from_device_model(cost, 64)
        big = CostModelParams.from_device_model(cost, 1536)
        assert big.c_d > small.c_d
        assert big.c_c == small.c_c  # ADC cost independent of dim

    def test_sigma_passthrough(self):
        params = CostModelParams.from_device_model(DeviceCostModel(), 64, sigma=3.0)
        assert params.sigma == 3.0
