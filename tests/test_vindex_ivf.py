"""Tests for IVF_FLAT."""

import numpy as np
import pytest

from repro.errors import IndexNotTrainedError, IndexParameterError
from repro.vindex.flat import FlatIndex
from repro.vindex.ivf import IVFFlatIndex


def clustered(n=400, dim=16, k=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(k, dim)).astype(np.float32)
    points = centers[rng.integers(0, k, size=n)] + rng.normal(
        scale=0.3, size=(n, dim)
    ).astype(np.float32)
    return points


@pytest.fixture
def data():
    return clustered()


@pytest.fixture
def index(data):
    idx = IVFFlatIndex(dim=16, nlist=8, seed=0)
    idx.train(data)
    idx.add_with_ids(data, np.arange(data.shape[0]))
    return idx


class TestTraining:
    def test_add_before_train_rejected(self, data):
        idx = IVFFlatIndex(dim=16, nlist=8)
        with pytest.raises(IndexNotTrainedError):
            idx.add_with_ids(data, np.arange(data.shape[0]))

    def test_nlist_shrinks_for_tiny_data(self):
        idx = IVFFlatIndex(dim=4, nlist=100)
        tiny = np.random.default_rng(0).normal(size=(5, 4)).astype(np.float32)
        idx.train(tiny)
        assert idx.nlist == 5

    def test_invalid_nlist(self):
        with pytest.raises(IndexParameterError):
            IVFFlatIndex(dim=8, nlist=0)


class TestSearch:
    def test_full_probe_is_exact(self, index, data):
        exact = FlatIndex(dim=16)
        exact.add_with_ids(data, np.arange(data.shape[0]))
        query = data[10] + 0.05
        full = index.search_with_filter(query, 10, nprobe=index.nlist)
        truth = exact.search_with_filter(query, 10)
        np.testing.assert_array_equal(full.ids, truth.ids)

    def test_recall_improves_with_nprobe(self, index, data):
        rng = np.random.default_rng(1)
        queries = data[rng.choice(len(data), 20, replace=False)] + 0.05
        truth = [
            set(np.argsort(np.linalg.norm(data - q, axis=1))[:10].tolist())
            for q in queries
        ]

        def recall(nprobe):
            hits = 0
            for q, want in zip(queries, truth):
                got = index.search_with_filter(q, 10, nprobe=nprobe)
                hits += len(set(got.ids.tolist()) & want)
            return hits / (10 * len(queries))

        assert recall(8) >= recall(1)
        assert recall(8) > 0.9

    def test_visited_scales_with_nprobe(self, index, data):
        few = index.search_with_filter(data[0], 5, nprobe=1)
        many = index.search_with_filter(data[0], 5, nprobe=8)
        assert many.visited > few.visited

    def test_bitset_filter(self, index, data):
        bitset = np.zeros(data.shape[0], dtype=bool)
        bitset[: len(data) // 2] = True
        result = index.search_with_filter(data[0], 10, nprobe=8, bitset=bitset)
        assert all(i < len(data) // 2 for i in result.ids.tolist())

    def test_empty_index(self):
        idx = IVFFlatIndex(dim=4, nlist=2)
        idx.train(np.random.default_rng(0).normal(size=(10, 4)).astype(np.float32))
        result = idx.search_with_filter(np.zeros(4, dtype=np.float32), 3)
        assert len(result) == 0


class TestPersistence:
    def test_roundtrip(self, index, data):
        from repro.vindex.registry import deserialize_index, serialize_index

        restored = deserialize_index(serialize_index(index))
        a = index.search_with_filter(data[3], 5, nprobe=4)
        b = restored.search_with_filter(data[3], 5, nprobe=4)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_memory_accounts_vectors(self, index, data):
        assert index.memory_bytes() >= data.nbytes
