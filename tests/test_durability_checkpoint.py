"""Checkpoint tests: atomic swap, triggers, WAL truncation, deferred GC."""

import numpy as np
import pytest

from repro.core.database import BlendHouse
from repro.durability.checkpoint import load_checkpoint, load_pointer
from repro.durability.manager import DurabilityConfig
from repro.errors import RecoveryError


def small_db(durability=None, rows=60, dim=8):
    db = BlendHouse(durability=durability)
    db.execute(
        "CREATE TABLE t (id UInt64, label String, embedding Array(Float32), "
        f"INDEX ann embedding TYPE FLAT('DIM={dim}'))"
    )
    rng = np.random.default_rng(7)
    db.insert_rows(
        "t",
        [
            {"id": i, "label": "ab"[i % 2], "embedding": rng.normal(size=dim)}
            for i in range(rows)
        ],
    )
    return db


class TestCheckpointWrite:
    def test_checkpoint_sql_publishes_current_pointer(self):
        db = small_db()
        assert load_pointer(db.store) is None
        ack = db.execute("CHECKPOINT")
        assert ack["checkpoint"] == 1
        pointer = load_pointer(db.store)
        assert pointer["checkpoint_id"] == 1
        data = load_checkpoint(db.store, pointer)
        assert [t["name"] for t in data["tables"]] == ["t"]
        assert data["wal_lsn"] == ack["wal_lsn"]

    def test_checkpoint_truncates_wal(self):
        db = small_db()
        assert db.store.list_keys("wal/") != []
        db.execute("CHECKPOINT")
        assert db.store.list_keys("wal/") == []
        assert db.metrics.count("durability.wal_truncated_chunks") > 0

    def test_superseded_checkpoints_deleted(self):
        db = small_db()
        db.execute("CHECKPOINT")
        db.insert_rows("t", [{"id": 100, "label": "a",
                              "embedding": np.zeros(8, dtype=np.float32)}])
        db.execute("CHECKPOINT")
        keys = db.store.list_keys("checkpoints/")
        checkpointer = db._durability.checkpointer
        assert sorted(keys) == sorted(
            [checkpointer.data_key(2), checkpointer.pointer_key]
        )

    def test_checkpoint_metrics_and_span(self):
        db = small_db()
        db.execute("CHECKPOINT")
        assert db.metrics.count("durability.checkpoints") == 1
        assert db.metrics.count("durability.checkpoint_bytes") > 0
        span = db.tracer.last_root()
        assert span is not None and "checkpoint" in span.render()

    def test_wal_bytes_trigger(self):
        config = DurabilityConfig(checkpoint_wal_bytes=1)
        db = small_db(durability=config)
        # Every statement boundary exceeds the 1-byte threshold.
        assert db.metrics.count("durability.checkpoints") >= 2
        assert db.durability_status()["bytes_since_checkpoint"] == 0

    def test_disabled_durability_writes_nothing(self):
        db = small_db(durability=DurabilityConfig(enabled=False))
        assert db.store.list_keys("wal/") == []
        ack = db.execute("CHECKPOINT")
        assert ack == {"checkpoint": None, "enabled": False}
        assert db.store.list_keys("checkpoints/") == []


class TestCompactionTrigger:
    def _fragmented(self, durability=None):
        db = small_db(durability=durability, rows=40)
        db.execute("DELETE FROM t WHERE id < 30")
        return db

    def test_compaction_checkpoints_by_default(self):
        db = self._fragmented()
        results = db.compact("t")
        assert results
        assert db.metrics.count("durability.checkpoints") == 1

    def test_deferred_gc_holds_until_checkpoint(self):
        config = DurabilityConfig(checkpoint_on_compaction=False)
        db = self._fragmented(durability=config)
        before = set(db.store.list_keys("segments/"))
        results = db.compact("t")
        assert results
        # Retired inputs still referenced by a recoverable manifest: their
        # payloads must survive until a checkpoint covers the swap.
        assert db._durability.gc_pending_keys > 0
        assert before <= set(db.store.list_keys("segments/"))
        db.execute("CHECKPOINT")
        assert db._durability.gc_pending_keys == 0
        assert db.metrics.count("durability.gc_deleted_objects") > 0
        after = set(db.store.list_keys("segments/"))
        assert not (before & after) or before - after  # inputs gone

    def test_drop_table_checkpoint_cleans_store_immediately(self):
        db = small_db()
        db.execute("DROP TABLE t")
        assert db.store.list_keys("segments/") == []
        assert db.store.list_keys("indexes/") == []
        assert db._durability.gc_pending_keys == 0


class TestCheckpointLoad:
    def test_load_pointer_none_on_fresh_store(self, store):
        assert load_pointer(store) is None

    def test_crc_mismatch_raises(self):
        db = small_db()
        db.execute("CHECKPOINT")
        pointer = load_pointer(db.store)
        body = bytearray(db.store.get(pointer["key"]))
        body[-1] ^= 0xFF
        db.store.put(pointer["key"], bytes(body))
        with pytest.raises(RecoveryError):
            load_checkpoint(db.store, pointer)

    def test_missing_body_raises(self):
        db = small_db()
        db.execute("CHECKPOINT")
        pointer = load_pointer(db.store)
        db.store.delete(pointer["key"])
        with pytest.raises(RecoveryError):
            load_checkpoint(db.store, pointer)
