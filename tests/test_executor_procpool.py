"""Thread-vs-process executor equivalence and pool fault tolerance.

The process scan plane must be invisible in results: for every index
type, with delete bitmaps, under ``AS OF`` snapshots, and on adversarial
tie/zero-norm layouts, ``SET executor_mode = 'process'`` returns the
exact rows (and the exact simulated time) the thread path returns.  On
top of that, the pool must survive a worker being SIGKILLed mid-scan —
detect, respawn, re-ship, retry — without the query or the engine
noticing, and must leave no shared-memory blocks behind.
"""

import gc
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.faults import WorkerCrashFault
from repro.core.database import BlendHouse, EngineSettings
from repro.errors import SQLError
from repro.executor.procpool import (
    ProcessScanPool,
    shared_pool,
    shutdown_shared_pool,
)
from repro.storage.sharedblock import orphaned_shm_names

from tests.helpers import vector_sql

INDEX_TYPES = ["FLAT", "IVFFLAT", "IVFPQ", "IVFPQFS", "HNSW", "HNSWSQ", "DISKANN"]


def _options(name: str) -> str:
    options = "'DIM=16'"
    if name.startswith("IVFPQ"):
        options += ", 'm=4'"
    return options


def _engine(rng, index_type: str, n: int = 300) -> BlendHouse:
    db = BlendHouse()
    db.execute(
        "CREATE TABLE docs (id UInt64, label String, "
        f"embedding Array(Float32), INDEX ann embedding "
        f"TYPE {index_type}({_options(index_type)}))"
    )
    db.table("docs").writer.config.max_segment_rows = 100
    rows = [
        {
            "id": i,
            "label": ["news", "sports", "tech"][i % 3],
            "embedding": rng.normal(size=16).astype(np.float32),
        }
        for i in range(n)
    ]
    db.insert_rows("docs", rows)
    db._docs_rows = rows
    return db


def _topk_sql(query, k=10, where="", suffix=""):
    where_text = f"WHERE {where} " if where else ""
    return (
        f"SELECT id, dist FROM docs{suffix} {where_text}"
        f"ORDER BY L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {k}"
    )


def both_modes(db: BlendHouse, sql: str):
    db.execute("SET executor_mode = 'thread'")
    db.execute(sql)  # warm the index cache: both timed runs see warm tiers
    thread = db.execute(sql)
    db.execute("SET executor_mode = 'process'")
    process = db.execute(sql)
    db.execute("SET executor_mode = 'thread'")
    return thread, process


@pytest.mark.parametrize("name", INDEX_TYPES)
class TestModeEquivalence:
    """SET executor_mode='process' is byte-identical to 'thread'."""

    def test_topk_identical(self, rng, name):
        db = _engine(rng, name)
        for i in (3, 60, 150):
            query = db._docs_rows[i]["embedding"]
            thread, process = both_modes(db, _topk_sql(query))
            assert process.rows == thread.rows
            assert process.simulated_seconds == thread.simulated_seconds

    def test_delete_bitmap_identical(self, rng, name):
        db = _engine(rng, name)
        db.execute("DELETE FROM docs WHERE id < 50")
        query = db._docs_rows[60]["embedding"]
        thread, process = both_modes(db, _topk_sql(query))
        assert process.rows == thread.rows
        assert all(row[0] >= 50 for row in process.rows)
        # The committed bitmaps travelled as shared-memory attach
        # handles, not per-scan pickles.
        assert db.metrics.count("procpool.bitmap_shm_ships") > 0

    def test_as_of_snapshot_identical(self, rng, name):
        db = _engine(rng, name)
        pinned = db.table("docs").manager.manifest_id
        db.execute("DELETE FROM docs WHERE id = 17")
        sql = _topk_sql(
            db._docs_rows[17]["embedding"], k=1, suffix=f" AS OF {pinned}"
        )
        thread, process = both_modes(db, sql)
        assert process.rows == thread.rows
        assert process.rows[0][0] == 17  # snapshot still sees the row

    def test_hybrid_predicate_identical(self, rng, name):
        db = _engine(rng, name)
        query = db._docs_rows[9]["embedding"]
        thread, process = both_modes(
            db, _topk_sql(query, where="label = 'news'")
        )
        assert process.rows == thread.rows

    def test_parallel_fanout_identical(self, rng, name):
        db = _engine(rng, name)
        db.execute("SET parallel_workers = 4")
        query = db._docs_rows[33]["embedding"]
        thread, process = both_modes(db, _topk_sql(query))
        assert process.rows == thread.rows
        assert process.simulated_seconds == thread.simulated_seconds


class TestAdversarialLayouts:
    @given(seed=st.integers(0, 2**31 - 1), dup=st.integers(2, 4))
    @settings(max_examples=5, deadline=None)
    def test_ties_and_zero_norms_identical(self, seed, dup):
        # Duplicated rows force exact distance ties; zero rows and a
        # zero query hit the zero-norm corner — tie-breaking order must
        # survive the process boundary bit-for-bit.
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(30, 16)).astype(np.float32)
        data = np.concatenate(
            [np.repeat(base, dup, axis=0), np.zeros((5, 16), dtype=np.float32)]
        )
        db = BlendHouse()
        db.execute(
            "CREATE TABLE docs (id UInt64, label String, "
            "embedding Array(Float32), INDEX ann embedding TYPE HNSW('DIM=16'))"
        )
        db.table("docs").writer.config.max_segment_rows = 40
        db.insert_rows("docs", [
            {"id": i, "label": "x", "embedding": data[i]}
            for i in range(data.shape[0])
        ])
        probes = [np.zeros(16, dtype=np.float32), data[0]]
        for query in probes:
            thread, process = both_modes(db, _topk_sql(query))
            assert process.rows == thread.rows


class TestSettingValidation:
    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert EngineSettings().executor_mode == "process"
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert EngineSettings().executor_mode == "thread"

    def test_bad_mode_rejected(self):
        settings_obj = EngineSettings()
        with pytest.raises(SQLError, match="executor_mode"):
            settings_obj.apply("executor_mode", "fibers")
        settings_obj.apply("executor_mode", "process")
        assert settings_obj.executor_mode == "process"


class TestCancellation:
    def test_staged_select_cancels_and_pool_recovers(self, rng):
        from repro.errors import QueryCancelledError
        from repro.executor.cancel import CancelToken

        db = _engine(rng, "HNSW")
        db.execute("SET executor_mode = 'process'")
        query = db._docs_rows[5]["embedding"]
        token = CancelToken()
        gen = db.select_stages(_topk_sql(query), cancel=token)
        next(gen)  # pin
        next(gen)  # plan
        token.cancel("client gone")
        with pytest.raises(QueryCancelledError):
            for _ in gen:
                pass
        # The cancel flag clears for the next query epoch; the pool
        # serves uncancelled queries normally afterwards.
        assert db.execute(_topk_sql(query)).rows

    def test_staged_select_routes_through_pool(self, rng):
        db = _engine(rng, "HNSW")
        query = db._docs_rows[42]["embedding"]
        db.execute("SET executor_mode = 'thread'")
        thread_rows = list(db.select_stages(_topk_sql(query)))[-1].result.rows
        db.execute("SET executor_mode = 'process'")
        scans_before = db.metrics.counters["procpool.scans"]
        process_rows = list(db.select_stages(_topk_sql(query)))[-1].result.rows
        assert process_rows == thread_rows
        assert db.metrics.counters["procpool.scans"] > scans_before


class TestWorkerCrash:
    """The WORKER_CRASH lever: kill → detect → respawn → retry."""

    def _crash_setup(self, rng):
        db = _engine(rng, "HNSW")
        pool = ProcessScanPool(workers=2, metrics=db.metrics)
        db._scan_pool_override = pool
        db.execute("SET executor_mode = 'process'")
        return db, pool

    def test_query_survives_mid_scan_crash(self, rng):
        db, pool = self._crash_setup(rng)
        try:
            query = db._docs_rows[60]["embedding"]
            baseline = db.execute(_topk_sql(query)).rows
            pids_before = set(pool.worker_pids())
            fault = WorkerCrashFault(pool).arm(1)
            crashed_run = db.execute(_topk_sql(query)).rows
            assert crashed_run == baseline
            assert fault.crashes_seen == 1
            assert fault.respawns_seen == 1
            # A dead pid was replaced by a fresh one.
            assert set(pool.worker_pids()) != pids_before
            # Engine unaffected: next query is clean, no more crashes.
            assert db.execute(_topk_sql(query)).rows == baseline
            assert pool.crashes == 1
        finally:
            pool.shutdown()

    def test_crash_events_emitted(self, rng):
        db, pool = self._crash_setup(rng)
        try:
            query = db._docs_rows[10]["embedding"]
            db.execute(_topk_sql(query))
            WorkerCrashFault(pool).arm(1)
            db.execute(_topk_sql(query))
            crash = db.events.last("worker.crash")
            respawn = db.events.last("worker.respawn")
            assert crash is not None and respawn is not None
            assert respawn.fields["replaced"] == crash.fields["pid"]
            assert db.metrics.counters["procpool.worker_crashes"] == 1
            assert db.metrics.counters["procpool.worker_respawns"] == 1
        finally:
            pool.shutdown()

    def test_repeated_crashes_eventually_fail_loudly(self, rng):
        from repro.errors import ExecutionError

        db, pool = self._crash_setup(rng)
        try:
            query = db._docs_rows[20]["embedding"]
            WorkerCrashFault(pool).arm(100)  # every attempt dies
            with pytest.raises(ExecutionError, match="crashed the scan"):
                db.execute(_topk_sql(query))
        finally:
            pool.shutdown()

    def test_crash_during_parallel_fanout(self, rng):
        db, pool = self._crash_setup(rng)
        try:
            db.execute("SET parallel_workers = 4")
            query = db._docs_rows[7]["embedding"]
            baseline = db.execute(_topk_sql(query)).rows
            WorkerCrashFault(pool).arm(1)
            assert db.execute(_topk_sql(query)).rows == baseline
            assert pool.respawns == 1
        finally:
            pool.shutdown()


class TestWarehouseProcessPlane:
    @staticmethod
    def _cluster(rng):
        from repro.cluster.engine import ClusteredBlendHouse

        engine = ClusteredBlendHouse(read_workers=3)
        engine.execute(
            "CREATE TABLE docs (id UInt64, label String, "
            "embedding Array(Float32), INDEX ann embedding TYPE FLAT('DIM=8'))"
        )
        engine.db.table("docs").writer.config.max_segment_rows = 100
        rows = [
            {"id": i, "label": ["a", "b"][i % 2],
             "embedding": rng.normal(size=8).astype(np.float32)}
            for i in range(600)
        ]
        engine.insert_rows("docs", rows)
        engine._rows = rows
        return engine

    @staticmethod
    def _sql(engine, k=5):
        query = engine._rows[17]["embedding"]
        return (
            f"SELECT id, dist FROM docs ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {k}"
        )

    def test_warehouse_scans_route_through_pool(self, rng):
        """Cluster admission (worker groups, LPT lanes, interference)
        must return identical rows whether scans run in-thread or on
        the process pool, across cold (brute/remote provider) and
        preloaded (local index) tiers."""
        engine = self._cluster(rng)
        sql = self._sql(engine)
        cold_thread = engine.execute(sql).rows
        pool = ProcessScanPool(workers=2, metrics=engine.metrics)
        engine.read_vw.scan_pool = pool
        try:
            cold_process = engine.execute(sql).rows
            assert cold_process == cold_thread
            engine.preload("docs")
            warm_process = engine.execute(sql).rows
            engine.read_vw.scan_pool = None
            warm_thread = engine.execute(sql).rows
            assert warm_process == warm_thread == cold_thread
        finally:
            engine.read_vw.scan_pool = None
            pool.shutdown()

    def test_warehouse_crash_respawn_mid_query(self, rng):
        engine = self._cluster(rng)
        sql = self._sql(engine)
        engine.preload("docs")
        baseline = engine.execute(sql).rows
        pool = ProcessScanPool(workers=2, metrics=engine.metrics)
        engine.read_vw.scan_pool = pool
        try:
            WorkerCrashFault(pool).arm(1)
            assert engine.execute(sql).rows == baseline
            assert pool.respawns == 1
        finally:
            engine.read_vw.scan_pool = None
            pool.shutdown()


class TestPoolHygiene:
    def test_shared_pool_is_reused_and_grows(self):
        pool_a = shared_pool(workers=2)
        pool_b = shared_pool(workers=3)
        assert pool_a is pool_b
        assert pool_b.size >= 3

    def test_no_shm_leaks_after_shutdown(self, rng):
        db = _engine(rng, "FLAT", n=150)
        db.execute("SET executor_mode = 'process'")
        db.execute(_topk_sql(db._docs_rows[0]["embedding"]))
        shutdown_shared_pool()
        del db
        gc.collect()
        assert orphaned_shm_names() == []

    def test_pool_shutdown_is_idempotent(self):
        pool = ProcessScanPool(workers=1)
        pool.shutdown()
        pool.shutdown()
        assert not pool.alive
