"""Tests for delete bitmaps, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.storage.deletebitmap import DeleteBitmap


class TestBasics:
    def test_initially_all_alive(self):
        bitmap = DeleteBitmap(10)
        assert bitmap.alive_count == 10
        assert bitmap.deleted_count == 0

    def test_mark_deleted(self):
        bitmap = DeleteBitmap(10)
        assert bitmap.mark_deleted([1, 3]) == 2
        assert bitmap.is_deleted(1)
        assert not bitmap.is_deleted(2)

    def test_idempotent_delete(self):
        bitmap = DeleteBitmap(10)
        bitmap.mark_deleted([5])
        assert bitmap.mark_deleted([5]) == 0
        assert bitmap.deleted_count == 1

    def test_out_of_range_rejected(self):
        bitmap = DeleteBitmap(4)
        with pytest.raises(ValueError):
            bitmap.mark_deleted([4])
        with pytest.raises(ValueError):
            bitmap.is_deleted(-1)

    def test_negative_row_count_rejected(self):
        with pytest.raises(ValueError):
            DeleteBitmap(-1)

    def test_zero_rows(self):
        bitmap = DeleteBitmap(0)
        assert bitmap.alive_count == 0
        assert bitmap.deleted_offsets().size == 0


class TestMasksAndFilters:
    def test_alive_mask(self):
        bitmap = DeleteBitmap(4)
        bitmap.mark_deleted([0, 2])
        np.testing.assert_array_equal(
            bitmap.alive_mask(), [False, True, False, True]
        )

    def test_filter_alive_preserves_order(self):
        bitmap = DeleteBitmap(6)
        bitmap.mark_deleted([1, 4])
        out = bitmap.filter_alive([5, 4, 3, 1, 0])
        np.testing.assert_array_equal(out, [5, 3, 0])

    def test_filter_alive_out_of_range(self):
        bitmap = DeleteBitmap(3)
        with pytest.raises(ValueError):
            bitmap.filter_alive([3])

    def test_deleted_offsets_sorted(self):
        bitmap = DeleteBitmap(10)
        bitmap.mark_deleted([7, 2, 5])
        np.testing.assert_array_equal(bitmap.deleted_offsets(), [2, 5, 7])


class TestMergeAndCopy:
    def test_merge_or_semantics(self):
        a = DeleteBitmap(5)
        b = DeleteBitmap(5)
        a.mark_deleted([0])
        b.mark_deleted([1])
        a.merge(b)
        assert a.deleted_count == 2
        assert b.deleted_count == 1

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            DeleteBitmap(3).merge(DeleteBitmap(4))

    def test_copy_is_independent(self):
        a = DeleteBitmap(5)
        clone = a.copy()
        a.mark_deleted([0])
        assert clone.deleted_count == 0


class TestSerialization:
    def test_roundtrip(self):
        bitmap = DeleteBitmap(8)
        bitmap.mark_deleted([1, 6])
        restored = DeleteBitmap.from_bytes(bitmap.to_bytes())
        assert restored.row_count == 8
        np.testing.assert_array_equal(restored.alive_mask(), bitmap.alive_mask())


class TestProperties:
    @given(
        rows=st.integers(min_value=1, max_value=200),
        data=st.data(),
    )
    def test_alive_plus_deleted_is_total(self, rows, data):
        bitmap = DeleteBitmap(rows)
        offsets = data.draw(
            st.lists(st.integers(min_value=0, max_value=rows - 1), max_size=50)
        )
        bitmap.mark_deleted(offsets)
        assert bitmap.alive_count + bitmap.deleted_count == rows
        assert bitmap.deleted_count == len(set(offsets))

    @given(
        rows=st.integers(min_value=1, max_value=100),
        data=st.data(),
    )
    def test_roundtrip_preserves_state(self, rows, data):
        bitmap = DeleteBitmap(rows)
        offsets = data.draw(
            st.lists(st.integers(min_value=0, max_value=rows - 1), max_size=30)
        )
        bitmap.mark_deleted(offsets)
        restored = DeleteBitmap.from_bytes(bitmap.to_bytes())
        np.testing.assert_array_equal(
            restored.deleted_offsets(), bitmap.deleted_offsets()
        )


class TestSharedBacking:
    """Frozen bitmaps ship across processes as shared-memory blocks."""

    def test_mutable_bitmap_refuses_to_share(self):
        bitmap = DeleteBitmap(50)
        assert bitmap.ensure_shared() is None
        assert bitmap.shared_spec is None

    def test_frozen_bitmap_shares_idempotently(self):
        bitmap = DeleteBitmap(50)
        bitmap.mark_deleted([1, 2, 40])
        bitmap.freeze()
        spec = bitmap.ensure_shared()
        assert spec is not None and spec.dtype == "bool"
        assert bitmap.ensure_shared().name == spec.name
        assert bitmap.shared_spec.name == spec.name
        # Promotion must not change what readers observe.
        assert bitmap.deleted_count == 3 and bitmap.is_deleted(40)

    def test_from_shared_sees_identical_mask(self):
        bitmap = DeleteBitmap(80, version=4)
        bitmap.mark_deleted(range(0, 80, 7))
        bitmap.freeze()
        spec = bitmap.ensure_shared()
        attached = DeleteBitmap.from_shared(spec, bitmap.version)
        assert attached.frozen
        assert attached.version == 4
        np.testing.assert_array_equal(
            attached.alive_mask(), bitmap.alive_mask()
        )
        with pytest.raises(Exception):
            attached.mark_deleted([0])

    def test_pickle_detaches_from_shared_block(self):
        import pickle

        bitmap = DeleteBitmap(30)
        bitmap.mark_deleted([5])
        bitmap.freeze()
        bitmap.ensure_shared()
        clone = pickle.loads(pickle.dumps(bitmap))
        assert clone.shared_spec is None
        assert clone.frozen and clone.is_deleted(5)
        # The restored mask is private and still immutable.
        with pytest.raises(Exception):
            clone.mark_deleted([1])

    def test_empty_bitmap_roundtrip(self):
        bitmap = DeleteBitmap(0)
        bitmap.freeze()
        spec = bitmap.ensure_shared()
        attached = DeleteBitmap.from_shared(spec)
        assert attached.row_count == 0 and attached.deleted_count == 0
