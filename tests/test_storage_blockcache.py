"""Tests for the shared (disaggregated) block cache tier and the
per-segment access statistics that drive fleet preloading."""

import numpy as np
import pytest

from repro.cluster.engine import ClusteredBlendHouse
from repro.cluster.stats import SegmentAccessStats
from repro.storage.blockcache import SharedBlockCache
from repro.storage.cache import HierarchicalIndexCache, SplitIndexCache
from repro.storage.localdisk import LocalDisk

from tests.helpers import vector_sql


class TestSharedBlockCache:
    def test_put_get_roundtrip(self, clock, cost):
        cache = SharedBlockCache(clock, cost, capacity_bytes=1 << 20)
        cache.put("idx", b"payload")
        assert "idx" in cache
        assert cache.get("idx") == b"payload"
        assert cache.hits == 1

    def test_miss_counts_and_returns_none(self, clock, cost):
        cache = SharedBlockCache(clock, cost, capacity_bytes=1 << 20)
        assert cache.get("ghost") is None
        assert cache.misses == 1

    def test_hit_charges_rpc_time(self, clock, cost):
        cache = SharedBlockCache(clock, cost, capacity_bytes=1 << 20)
        payload = b"x" * 4096
        cache.put("idx", payload)
        before = clock.now
        cache.get("idx")
        charged = clock.now - before
        assert charged == pytest.approx(cost.rpc_call(64, len(payload)))
        # The whole point of the tier: cheaper than re-reading the
        # object store, dearer than the local disk.
        assert charged < cost.object_store_read(len(payload))
        assert charged > cost.disk_read(len(payload))

    def test_put_is_free_and_probe_is_free(self, clock, cost):
        cache = SharedBlockCache(clock, cost, capacity_bytes=1 << 20)
        before = clock.now
        cache.put("idx", b"x" * 1024)
        assert "idx" in cache
        assert clock.now == before  # write-behind + membership probes

    def test_capacity_eviction(self, clock, cost):
        cache = SharedBlockCache(clock, cost, capacity_bytes=8)
        cache.put("a", b"xxxx")
        cache.put("b", b"xxxx")
        cache.put("c", b"xxxx")  # evicts a (LRU)
        assert "a" not in cache and "c" in cache
        assert cache.used_bytes <= 8

    def test_invalidate(self, clock, cost):
        cache = SharedBlockCache(clock, cost, capacity_bytes=1 << 20)
        cache.put("idx", b"payload")
        cache.invalidate("idx")
        assert "idx" not in cache


class _FakeIndex:
    def __init__(self, payload: bytes) -> None:
        self.payload = payload

    def memory_bytes(self) -> int:
        return len(self.payload)


@pytest.fixture
def shared_hierarchy(clock, cost, metrics, store):
    shared = SharedBlockCache(clock, cost, capacity_bytes=1 << 20)
    caches = []
    for _ in range(2):
        memory = SplitIndexCache(1 << 20, 1 << 20)
        disk = LocalDisk(clock, 1 << 20, cost, metrics)
        caches.append(
            HierarchicalIndexCache(
                clock, memory, disk, store, deserialize=_FakeIndex,
                cost_model=cost, metrics=metrics, shared=shared,
            )
        )
    return caches, shared, store


class TestSharedTierInHierarchy:
    def test_second_cache_hits_shared_not_remote(self, shared_hierarchy):
        (first, second), shared, store = shared_hierarchy
        store.put("idx", b"payload")
        _, tier1 = first.get("idx")
        assert tier1 == "remote"  # cold fleet: object store pays once
        _, tier2 = second.get("idx")
        assert tier2 == "shared"  # peer promoted it; RPC, not re-fetch
        assert shared.hits == 1

    def test_shared_hit_backfills_lower_tiers(self, shared_hierarchy):
        (first, second), shared, store = shared_hierarchy
        store.put("idx", b"payload")
        first.get("idx")
        second.get("idx")
        _, tier = second.get("idx")
        assert tier == "memory"

    def test_preload_uses_shared_pool(self, shared_hierarchy, clock, cost):
        (first, second), shared, store = shared_hierarchy
        store.put("idx", b"x" * 2048)
        first.get("idx")
        before = clock.now
        assert second.preload("idx")
        charged = clock.now - before
        # Preload pulled from the shared tier, not the object store.
        assert charged < cost.object_store_read(2048)

    def test_invalidate_propagates_to_shared(self, shared_hierarchy):
        (first, _second), shared, store = shared_hierarchy
        store.put("idx", b"payload")
        first.get("idx")
        assert "idx" in shared
        first.invalidate("idx")
        assert "idx" not in shared


class TestSegmentAccessStats:
    def test_hit_and_miss_tiers(self):
        stats = SegmentAccessStats()
        stats.record("seg-a", "local", now=1.0)
        stats.record("seg-a", "shared", now=2.0)
        stats.record("seg-a", "serving", now=3.0)
        access = stats.get("seg-a")
        assert access.hits == 2 and access.misses == 1
        assert access.last_access == 3.0
        assert access.tiers == {"local": 1, "shared": 1, "serving": 1}

    def test_hot_segments_ranked_by_heat(self):
        stats = SegmentAccessStats()
        for _ in range(3):
            stats.record("seg-hot", "local", now=1.0)
        stats.record("seg-warm", "disk", now=2.0)
        assert stats.hot_segments() == ["seg-hot", "seg-warm"]
        assert stats.hot_segments(limit=1) == ["seg-hot"]

    def test_preloads_do_not_count_as_heat(self):
        stats = SegmentAccessStats()
        stats.record_preload("seg-a", now=1.0)
        assert stats.hot_segments() == []
        assert stats.get("seg-a").preloads == 1

    def test_merge_from(self):
        a, b = SegmentAccessStats(), SegmentAccessStats()
        a.record("seg", "local", now=1.0)
        b.record("seg", "remote", now=5.0)
        merged = SegmentAccessStats()
        merged.merge_from([a, b])
        access = merged.get("seg")
        assert access.hits == 1 and access.misses == 1
        assert access.last_access == 5.0
        assert merged.hit_rate() == 0.5


@pytest.fixture
def shared_cluster():
    engine = ClusteredBlendHouse(
        read_workers=2, shared_cache_bytes=64 << 20
    )
    engine.execute(
        "CREATE TABLE docs (id UInt64, embedding Array(Float32), "
        "INDEX ann embedding TYPE FLAT('DIM=8'))"
    )
    engine.db.table("docs").writer.config.max_segment_rows = 100
    rng = np.random.default_rng(0)
    rows = [
        {"id": i, "embedding": rng.normal(size=8).astype(np.float32)}
        for i in range(400)
    ]
    engine.insert_rows("docs", rows)
    engine._rows = rows
    return engine


class TestClusterSharedCache:
    def test_export_metrics_records_segment_stats(self, shared_cluster):
        engine = shared_cluster
        engine.preload("docs")
        query = shared_cluster._rows[17]["embedding"]
        engine.execute(
            f"SELECT id FROM docs ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) LIMIT 5"
        )
        exported = engine.read_vw.export_metrics()
        assert exported["name"] == "read-vw"
        assert exported["segments"], "per-segment stats must be recorded"
        assert exported["hit_rate"] > 0.0
        for entry in exported["segments"].values():
            assert set(entry) >= {"hits", "misses", "preloads", "tiers"}

    def test_preload_counts_per_segment(self, shared_cluster):
        engine = shared_cluster
        loaded = engine.preload("docs")
        assert loaded > 0
        snapshot = engine.read_vw.access_stats.snapshot()
        assert sum(entry["preloads"] for entry in snapshot.values()) == loaded

    def test_results_identical_with_and_without_shared_tier(self):
        def run(shared_bytes):
            engine = ClusteredBlendHouse(
                read_workers=2, shared_cache_bytes=shared_bytes
            )
            engine.execute(
                "CREATE TABLE docs (id UInt64, embedding Array(Float32), "
                "INDEX ann embedding TYPE FLAT('DIM=8'))"
            )
            engine.db.table("docs").writer.config.max_segment_rows = 100
            rng = np.random.default_rng(1)
            rows = [
                {"id": i, "embedding": rng.normal(size=8).astype(np.float32)}
                for i in range(300)
            ]
            engine.insert_rows("docs", rows)
            query = rows[11]["embedding"]
            result = engine.execute(
                f"SELECT id FROM docs ORDER BY "
                f"L2Distance(embedding, {vector_sql(query)}) LIMIT 8"
            )
            return [row[0] for row in result.rows]

        assert run(0) == run(64 << 20)
