"""Tests for the simulated index-build cost model."""


from repro.ingest.buildcost import estimate_index_build_cost
from repro.simulate.costmodel import DeviceCostModel

COST = DeviceCostModel()


def build(index_type, n=100_000, dim=128, **params):
    return estimate_index_build_cost(index_type, n, dim, params, COST)


class TestOrdering:
    def test_paper_table5_ordering(self):
        """HNSW > HNSWSQ > IVFPQFS, the Table V shape."""
        hnsw = build("HNSW", m=16, ef_construction=100)
        hnswsq = build("HNSWSQ", m=16, ef_construction=100)
        ivfpqfs = build("IVFPQFS", nlist=1000, m=8)
        assert hnsw > hnswsq > ivfpqfs

    def test_hnswsq_ratio_near_paper(self):
        hnsw = build("HNSW", m=16, ef_construction=100)
        hnswsq = build("HNSWSQ", m=16, ef_construction=100)
        assert 0.5 < hnswsq / hnsw < 0.75  # paper: ~0.63-0.65

    def test_flat_is_cheapest(self):
        assert build("FLAT") < build("IVFPQFS", nlist=1000, m=8)

    def test_ivfpq_more_than_fastscan(self):
        # 256-codeword sub-quantizers train and encode slower than 16.
        assert build("IVFPQ", nlist=1000, m=8) > build("IVFPQFS", nlist=1000, m=8)


class TestScaling:
    def test_monotone_in_rows(self):
        costs = [build("HNSW", n=n) for n in (1_000, 10_000, 100_000)]
        assert costs == sorted(costs)

    def test_monotone_in_dim(self):
        assert build("HNSW", dim=768) > build("HNSW", dim=64)

    def test_monotone_in_ef_construction(self):
        assert build("HNSW", ef_construction=200) > build("HNSW", ef_construction=50)

    def test_zero_rows_free(self):
        assert build("HNSW", n=0) == 0.0

    def test_unknown_type_conservative(self):
        assert build("FUTURE_INDEX") > 0


class TestDeviceSensitivity:
    def test_scales_with_flop_cost(self):
        slow = DeviceCostModel().scaled(distance_flop_s=1e-8)
        fast = DeviceCostModel().scaled(distance_flop_s=1e-10)
        assert estimate_index_build_cost("HNSW", 10_000, 64, {}, slow) > \
            estimate_index_build_cost("HNSW", 10_000, 64, {}, fast)
