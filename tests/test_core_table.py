"""Tests for the per-table runtime (local index resolution)."""

import numpy as np
import pytest

from repro.core.database import BlendHouse


@pytest.fixture
def runtime(rng):
    db = BlendHouse()
    db.execute(
        "CREATE TABLE t (id UInt64, embedding Array(Float32), "
        "INDEX ann embedding TYPE IVFPQ('DIM=16', 'm=4'))"
    )
    db.insert_rows(
        "t",
        [{"id": i, "embedding": rng.normal(size=16).astype(np.float32)}
         for i in range(200)],
    )
    return db, db.table("t")


class TestResolution:
    def test_freshly_built_index_served_from_memory(self, runtime, ):
        db, table = runtime
        segment = table.manager.segments()[0]
        before = db.clock.now
        index = table.resolve_index(segment)
        assert index is not None
        assert db.clock.now == before  # built_indexes path is free

    def test_cold_load_charges_and_memoizes(self, runtime):
        db, table = runtime
        segment = table.manager.segments()[0]
        table.writer.built_indexes.clear()
        before = db.clock.now
        index = table.resolve_index(segment)
        assert index is not None
        assert db.clock.now > before  # object-store fetch charged
        assert db.metrics.count("table.index_cold_loads") == 1
        mark = db.clock.now
        again = table.resolve_index(segment)
        assert again is index  # memoized
        assert db.clock.now == mark

    def test_missing_index_returns_none(self, runtime):
        db, table = runtime
        segment = table.manager.segments()[0]
        key = table.manager.index_key(segment.segment_id)
        table.writer.built_indexes.clear()
        db.store.delete(key)
        assert table.resolve_index(segment) is None

    def test_refiner_reattached_after_cold_load(self, runtime):
        """IVFPQ needs its segment-backed refiner rewired after
        deserialization; resolution must do it transparently."""
        db, table = runtime
        segment = table.manager.segments()[0]
        table.writer.built_indexes.clear()
        index = table.resolve_index(segment)
        assert index._refiner is not None
        query = segment.vectors()[5]
        result = index.search_with_filter(query, 1, nprobe=index.nlist)
        assert result.ids[0] == 5

    def test_compaction_retires_memoized_indexes(self, runtime):
        db, table = runtime
        # Fragment then compact.
        for i in range(4):
            db.execute(f"UPDATE t SET id = {i} WHERE id = {i}")
        keys_before = {
            sid: table.manager.index_key(sid)
            for sid in table.manager.segment_ids()
        }
        # Force cold loads so the memo is populated.
        table.writer.built_indexes.clear()
        for segment in table.manager.segments():
            table.resolve_index(segment)
        results = db.compact("t")
        assert results
        surviving = set(table.manager.segment_ids())
        for sid, key in keys_before.items():
            if sid not in surviving:
                assert key not in table._loaded_indexes
