"""Tests for columnar block encoding."""

import numpy as np
import pytest

from repro.storage.blockio import block_nbytes, decode_block, encode_block


class TestRoundtrip:
    def test_float_array(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        out = decode_block(encode_block(arr))
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, arr)

    def test_int_array(self):
        arr = np.array([1, 2, 3], dtype=np.int64)
        np.testing.assert_array_equal(decode_block(encode_block(arr)), arr)

    def test_string_list(self):
        values = ["a", "bb", "日本語"]
        assert decode_block(encode_block(values)) == values

    def test_dict_payload(self):
        payload = {"a": 1, "b": (2, 3)}
        assert decode_block(encode_block(payload)) == payload

    def test_empty_array(self):
        arr = np.empty((0, 8), dtype=np.float32)
        out = decode_block(encode_block(arr))
        assert out.shape == (0, 8)


class TestErrors:
    def test_truncated_payload(self):
        with pytest.raises(ValueError):
            decode_block(b"XY")

    def test_unknown_header(self):
        with pytest.raises(ValueError):
            decode_block(b"ZZZZdata")


class TestSizes:
    def test_array_size_close_to_nbytes(self):
        arr = np.zeros((100, 16), dtype=np.float32)
        estimated = block_nbytes(arr)
        assert arr.nbytes <= estimated <= arr.nbytes + 256

    def test_size_matches_encoded_length_for_strings(self):
        values = ["hello"] * 50
        # Same pickle plus the 4-byte header.
        assert block_nbytes(values) == len(encode_block(values))
