"""Tests for rule-based optimizations."""

import pytest

from repro.catalog.schema import TableSchema
from repro.planner.logical import bind_select
from repro.planner.rules import apply_rules, topk_pushdown
from repro.sqlparser.ast_nodes import ColumnDef
from repro.sqlparser.parser import parse_statement
from repro.vindex.registry import IndexSpec

VEC = "[1.0, 0.0, 0.0, 0.0]"


@pytest.fixture
def schema():
    return TableSchema.from_ddl(
        "docs",
        [
            ColumnDef("id", "UInt64"),
            ColumnDef("embedding", "Array", ("Float32",)),
        ],
        index_spec=IndexSpec(index_type="HNSW", dim=4, column="embedding"),
    )


def bound(sql, schema):
    return bind_select(parse_statement(sql), schema)


class TestTopKPushdown:
    def test_offset_folded_into_k(self, schema):
        plan = bound(
            f"SELECT id FROM docs ORDER BY L2Distance(embedding, {VEC}) "
            f"LIMIT 10 OFFSET 4",
            schema,
        )
        pushed = topk_pushdown(plan)
        assert pushed.k == 14
        assert pushed.offset == 4

    def test_no_offset_unchanged(self, schema):
        plan = bound(
            f"SELECT id FROM docs ORDER BY L2Distance(embedding, {VEC}) LIMIT 10",
            schema,
        )
        assert topk_pushdown(plan) is plan

    def test_scalar_query_untouched(self, schema):
        plan = bound("SELECT id FROM docs LIMIT 5 OFFSET 2", schema)
        assert topk_pushdown(plan).k == 5


class TestRulePipeline:
    def test_apply_rules_idempotent_on_simple_plan(self, schema):
        plan = bound(
            f"SELECT id FROM docs ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema,
        )
        once = apply_rules(plan)
        twice = apply_rules(once)
        assert twice.k == once.k
        assert twice.offset == once.offset

    def test_custom_rule_list(self, schema):
        plan = bound("SELECT id FROM docs LIMIT 5", schema)
        marker = []

        def spy(p):
            marker.append(True)
            return p

        apply_rules(plan, rules=[spy])
        assert marker == [True]

    def test_vector_pruning_keeps_projected_vector(self, schema):
        plan = bound(
            f"SELECT embedding FROM docs "
            f"ORDER BY L2Distance(embedding, {VEC}) LIMIT 5",
            schema,
        )
        out = apply_rules(plan)
        assert out.needs_vector_column
