"""Tests for dataset generators, recall, and workload construction."""

import numpy as np
import pytest

from repro.workloads import (
    ground_truth,
    make_cohere_like,
    make_hybrid_workload,
    make_laion_like,
    make_openai_like,
    make_production_like,
    recall_at_k,
    selectivity_threshold,
)
from repro.workloads.vectorbench import SweepPoint, qps_at_recall, qps_from_latencies


class TestDatasets:
    @pytest.mark.parametrize(
        "factory,name",
        [
            (make_cohere_like, "cohere-like"),
            (make_openai_like, "openai-like"),
            (make_laion_like, "laion-like"),
            (make_production_like, "production-like"),
        ],
    )
    def test_shapes_and_normalization(self, factory, name):
        ds = factory(n=500, dim=16, n_queries=10)
        assert ds.name == name
        assert ds.vectors.shape == (500, 16)
        assert ds.queries.shape == (10, 16)
        norms = np.linalg.norm(ds.vectors, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-4)

    def test_deterministic_under_seed(self):
        a = make_cohere_like(n=200, dim=8, seed=5)
        b = make_cohere_like(n=200, dim=8, seed=5)
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_clustered_structure(self):
        """Generated data must be genuinely clustered (semantic
        partitioning and IVF depend on it)."""
        ds = make_cohere_like(n=1000, dim=16)
        from repro.vindex.kmeans import kmeans

        fitted = kmeans(ds.vectors, ds.n_clusters, seed=0)
        spread = float(
            np.linalg.norm(
                ds.vectors - fitted.centroids[fitted.assignments], axis=1
            ).mean()
        )
        global_spread = float(
            np.linalg.norm(ds.vectors - ds.vectors.mean(axis=0), axis=1).mean()
        )
        assert spread < 0.9 * global_spread

    def test_laion_extras(self):
        ds = make_laion_like(n=300, dim=8)
        assert all(isinstance(c, str) for c in ds.scalars["caption"])
        assert "similarity" in ds.scalars
        assert ds.extras["similarity_threshold"] == 0.3

    def test_production_columns(self):
        ds = make_production_like(n=300, dim=8)
        assert {"category", "source", "day", "score"} <= set(ds.scalars)


class TestGroundTruth:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(100, 8)).astype(np.float32)
        queries = vectors[:3] + 0.01
        truth = ground_truth(vectors, queries, 5)
        for qi in range(3):
            expected = np.argsort(np.linalg.norm(vectors - queries[qi], axis=1))[:5]
            np.testing.assert_array_equal(truth[qi], expected)

    def test_filtered_truth(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(50, 4)).astype(np.float32)
        mask = np.zeros(50, dtype=bool)
        mask[:10] = True
        truth = ground_truth(vectors, vectors[:1], 5, masks=[mask])
        assert set(truth[0].tolist()) <= set(range(10))

    def test_empty_mask(self):
        vectors = np.zeros((10, 2), dtype=np.float32)
        truth = ground_truth(vectors, vectors[:1], 3, masks=[np.zeros(10, bool)])
        assert truth[0].size == 0


class TestRecall:
    def test_perfect_recall(self):
        assert recall_at_k([[1, 2, 3]], [[1, 2, 3]], 3) == 1.0

    def test_partial_recall(self):
        assert recall_at_k([[1, 2, 9]], [[1, 2, 3]], 3) == pytest.approx(2 / 3)

    def test_empty_truth_skipped(self):
        assert recall_at_k([[1]], [[]], 3) == 0.0

    def test_truncates_to_k(self):
        assert recall_at_k([[1, 2, 3, 4]], [[1, 2]], 2) == 1.0


class TestWorkloads:
    def test_selectivity_threshold(self):
        assert selectivity_threshold(0.5) == 5000
        assert selectivity_threshold(0.0) == 0
        with pytest.raises(ValueError):
            selectivity_threshold(1.5)

    def test_pure_workload(self):
        ds = make_cohere_like(n=300, dim=8, n_queries=5)
        wl = make_hybrid_workload(ds, k=5)
        assert wl.masks == [None] * 5
        assert wl.paper_selectivity_label == "none"
        assert len(wl.truth) == 5

    def test_hybrid_workload_pass_fraction(self):
        ds = make_cohere_like(n=2000, dim=8, n_queries=5)
        wl = make_hybrid_workload(ds, k=5, pass_fraction=0.2)
        actual = wl.masks[0].mean()
        assert actual == pytest.approx(0.2, abs=0.05)
        assert wl.paper_selectivity_label == "80%"

    def test_sql_rendering(self):
        ds = make_cohere_like(n=300, dim=8, n_queries=2)
        wl = make_hybrid_workload(ds, k=7, pass_fraction=0.5)
        sql = wl.sql(0, table="bench")
        assert "LIMIT 7" in sql
        assert "WHERE attr <" in sql
        assert "L2Distance" in sql

    def test_truth_respects_filter(self):
        ds = make_cohere_like(n=1000, dim=8, n_queries=3)
        wl = make_hybrid_workload(ds, k=5, pass_fraction=0.1)
        attr = np.asarray(ds.scalars["attr"])
        threshold = selectivity_threshold(0.1)
        for truth in wl.truth:
            assert all(attr[i] < threshold for i in truth.tolist())


class TestBenchHelpers:
    def test_qps_from_latencies(self):
        assert qps_from_latencies([0.1] * 5) == pytest.approx(10.0)
        assert qps_from_latencies([]) == 0.0

    def test_qps_at_recall_picks_best_eligible(self):
        points = [
            SweepPoint({"ef": 10}, recall=0.90, qps=500),
            SweepPoint({"ef": 50}, recall=0.99, qps=300),
            SweepPoint({"ef": 100}, recall=0.995, qps=200),
        ]
        best = qps_at_recall(points, 0.99)
        assert best.params == {"ef": 50}

    def test_qps_at_recall_none_when_unreachable(self):
        points = [SweepPoint({"ef": 10}, recall=0.5, qps=100)]
        assert qps_at_recall(points, 0.99) is None
