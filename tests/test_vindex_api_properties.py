"""Cross-index property tests on the virtual index interface."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vindex.api import pairwise_distance, top_k_from_distances
from repro.vindex.registry import IndexSpec, create_index

INDEX_TYPES = ["FLAT", "IVFFLAT", "HNSW", "HNSWSQ", "DISKANN", "IVFPQ", "IVFPQFS"]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(1)
    return rng.normal(size=(250, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def built(data):
    out = {}
    for name in INDEX_TYPES:
        params = {"m": 4} if name.startswith("IVFPQ") else {}
        index = create_index(IndexSpec(index_type=name, dim=16, params=params))
        index.train(data)
        index.add_with_ids(data, np.arange(data.shape[0]))
        out[name] = index
    return out


@pytest.mark.parametrize("name", INDEX_TYPES)
class TestInterfaceContract:
    def test_result_sorted(self, built, data, name):
        result = built[name].search_with_filter(data[0] + 0.05, 10)
        assert np.all(np.diff(result.distances) >= -1e-6)

    def test_result_ids_valid(self, built, data, name):
        result = built[name].search_with_filter(data[0], 10)
        assert np.all(result.ids >= 0)
        assert np.all(result.ids < data.shape[0])
        assert len(set(result.ids.tolist())) == len(result)

    def test_k_zero_empty(self, built, data, name):
        assert len(built[name].search_with_filter(data[0], 0)) == 0

    def test_bitset_never_leaks(self, built, data, name):
        bitset = np.zeros(data.shape[0], dtype=bool)
        bitset[50:100] = True
        result = built[name].search_with_filter(data[60], 5, bitset=bitset)
        assert set(result.ids.tolist()) <= set(range(50, 100))

    def test_range_search_respects_radius(self, built, data, name):
        result = built[name].search_with_range(data[0], 3.0)
        assert np.all(result.distances <= 3.0 + 1e-6)

    def test_visited_reported(self, built, data, name):
        result = built[name].search_with_filter(data[0], 5)
        assert result.visited > 0

    def test_memory_bytes_positive(self, built, name):
        assert built[name].memory_bytes() >= 0

    def test_iterator_streams_unique_sorted_ids(self, built, data, name):
        iterator = built[name].search_iterator(data[0], batch_size=8)
        ids, dists = [], []
        for _ in range(3):
            batch = iterator.next_batch()
            ids.extend(batch.ids.tolist())
            dists.extend(batch.distances.tolist())
        assert len(ids) == len(set(ids))
        assert all(dists[i] <= dists[i + 1] + 1e-5 for i in range(len(dists) - 1))


class TestPairwiseDistance:
    def test_l2_matches_numpy(self):
        rng = np.random.default_rng(0)
        query = rng.normal(size=8).astype(np.float32)
        vectors = rng.normal(size=(20, 8)).astype(np.float32)
        expected = np.linalg.norm(vectors - query, axis=1)
        np.testing.assert_allclose(
            pairwise_distance(query, vectors, "l2"), expected, rtol=1e-5
        )

    def test_cosine_identity(self):
        v = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        dist = pairwise_distance(np.array([1.0, 0.0]), v, "cosine")
        assert dist[0] == pytest.approx(0.0, abs=1e-6)
        assert dist[1] == pytest.approx(1.0, abs=1e-6)

    def test_unknown_metric(self):
        from repro.errors import IndexParameterError

        with pytest.raises(IndexParameterError):
            pairwise_distance(np.zeros(2), np.zeros((1, 2)), "hamming")

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_topk_helper_matches_sort(self, k, seed):
        rng = np.random.default_rng(seed)
        n = 50
        ids = np.arange(n)
        dists = rng.random(n)
        result = top_k_from_distances(ids, dists, k, visited=n)
        expected = np.argsort(dists, kind="stable")[: min(k, n)]
        np.testing.assert_array_equal(result.ids, expected)
