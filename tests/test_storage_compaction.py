"""Tests for background compaction."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.ingest.writer import IngestConfig, SegmentWriter
from repro.sqlparser.parser import parse_statement
from repro.storage.compaction import CompactionConfig, Compactor
from repro.storage.lsm import SegmentManager
from repro.storage.objectstore import ObjectStore
from repro.vindex.registry import IndexSpec


@pytest.fixture
def setup(clock, cost):
    store = ObjectStore(clock, cost)
    catalog = Catalog()
    ddl = parse_statement(
        "CREATE TABLE t (id UInt64, embedding Array(Float32), "
        "INDEX ai embedding TYPE FLAT('DIM=8'))"
    )
    schema = TableSchema.from_ddl(
        ddl.name, ddl.columns, index_spec=IndexSpec(index_type="FLAT", dim=8)
    )
    entry = catalog.create_table(schema)
    manager = SegmentManager()
    writer = SegmentWriter(
        entry, manager, store, clock, cost_model=cost,
        config=IngestConfig(max_segment_rows=50),
    )
    compactor = Compactor(
        entry=entry, manager=manager, store=store, clock=clock, cost=cost,
        config=CompactionConfig(fanout=3),
    )
    return entry, manager, writer, compactor, store


def ingest_batches(writer, batches: int, rows_per_batch: int = 40, dim: int = 8):
    rng = np.random.default_rng(0)
    counter = 0
    for _ in range(batches):
        rows = [
            {"id": counter + i, "embedding": rng.normal(size=dim)}
            for i in range(rows_per_batch)
        ]
        counter += rows_per_batch
        writer.ingest_rows(rows)


class TestFanoutTrigger:
    def test_merges_when_group_reaches_fanout(self, setup):
        entry, manager, writer, compactor, _ = setup
        ingest_batches(writer, 3)
        assert len(manager) == 3
        results = compactor.run_once()
        assert len(results) == 1
        assert results[0].rows_out == 120
        assert len(manager) == 1
        merged = manager.segments()[0]
        assert merged.meta.level == 1

    def test_no_merge_below_fanout(self, setup):
        _, manager, writer, compactor, _ = setup
        ingest_batches(writer, 2)
        assert compactor.run_once() == []
        assert len(manager) == 2

    def test_compact_all_converges(self, setup):
        _, manager, writer, compactor, _ = setup
        ingest_batches(writer, 9)
        compactor.compact_all()
        assert compactor.run_once() == []
        assert manager.alive_rows() == 9 * 40


class TestDeadRowCleanup:
    def test_dirty_segment_rewritten(self, setup):
        _, manager, writer, compactor, _ = setup
        ingest_batches(writer, 1)
        sid = manager.segment_ids()[0]
        manager.mark_deleted(sid, list(range(20)))  # 50% dead
        results = compactor.run_once()
        assert len(results) == 1
        assert results[0].dropped_dead_rows == 20
        assert manager.deleted_rows() == 0
        assert manager.alive_rows() == 20

    def test_clean_single_segment_untouched(self, setup):
        _, manager, writer, compactor, _ = setup
        ingest_batches(writer, 1)
        assert compactor.run_once() == []


class TestIndexLifecycle:
    def test_merged_segment_gets_fresh_index(self, setup):
        _, manager, writer, compactor, store = setup
        ingest_batches(writer, 3)
        compactor.run_once()
        merged_id = manager.segment_ids()[0]
        key = manager.index_key(merged_id)
        assert key is not None
        assert key in store

    def test_retired_objects_deleted_from_store(self, setup):
        _, manager, writer, compactor, store = setup
        ingest_batches(writer, 3)
        old_ids = manager.segment_ids()
        old_keys = [manager.index_key(s) for s in old_ids]
        compactor.run_once()
        for key in old_keys:
            assert key not in store

    def test_retire_hooks_fired(self, setup):
        _, manager, writer, compactor, _ = setup
        ingest_batches(writer, 3)
        retired = []
        compactor.on_retire(lambda sid, key: retired.append(sid))
        compactor.run_once()
        assert len(retired) == 3


class TestCosts:
    def test_compaction_charges_simulated_time(self, setup, clock):
        _, _, writer, compactor, _ = setup
        ingest_batches(writer, 3)
        before = clock.now
        results = compactor.run_once()
        assert clock.now > before
        assert results[0].simulated_seconds > 0

    def test_entry_segment_ids_updated(self, setup):
        entry, manager, writer, compactor, _ = setup
        ingest_batches(writer, 3)
        compactor.run_once()
        assert set(entry.segment_ids) == set(manager.segment_ids())
