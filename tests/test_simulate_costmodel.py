"""Tests for the device cost model."""

import pytest

from repro.simulate.costmodel import DeviceCostModel


@pytest.fixture
def cost() -> DeviceCostModel:
    return DeviceCostModel()


class TestTransferCosts:
    def test_ram_faster_than_disk(self, cost):
        assert cost.ram_read(1 << 20) < cost.disk_read(1 << 20)

    def test_disk_faster_than_object_store(self, cost):
        assert cost.disk_read(1 << 20) < cost.object_store_read(1 << 20)

    def test_object_store_latency_dominates_small_reads(self, cost):
        # A 1-byte GET should cost essentially the first-byte latency.
        assert cost.object_store_read(1) == pytest.approx(
            cost.object_store_latency_s, rel=1e-3
        )

    def test_bandwidth_term_scales_linearly(self, cost):
        small = cost.object_store_read(1 << 20)
        large = cost.object_store_read(10 << 20)
        gained = large - small
        expected = 9 * (1 << 20) / cost.object_store_bandwidth_bps
        assert gained == pytest.approx(expected, rel=1e-6)

    def test_negative_size_rejected(self, cost):
        with pytest.raises(ValueError):
            cost.ram_read(-1)

    def test_write_equals_read_model(self, cost):
        assert cost.object_store_write(1024) == pytest.approx(
            cost.object_store_read(1024)
        )


class TestComputeCosts:
    def test_distance_cost_scales_with_dim_and_count(self, cost):
        assert cost.distance_cost(100, 64) == pytest.approx(
            100 * 64 * cost.distance_flop_s
        )

    def test_adc_cheaper_than_full_distance(self, cost):
        # ADC over m=8 codes vs exact distance at dim 768.
        assert cost.adc_cost(1000, 8) < cost.distance_cost(1000, 768)

    def test_rpc_cost_has_round_trip_floor(self, cost):
        assert cost.rpc_call(0, 0) == pytest.approx(cost.rpc_round_trip_s)

    def test_kmeans_cost_positive(self, cost):
        assert cost.kmeans_cost(1000, 32, 16, 10) > 0


class TestScaled:
    def test_scaled_overrides_one_constant(self, cost):
        slow = cost.scaled(object_store_latency_s=1.0)
        assert slow.object_store_latency_s == 1.0
        assert slow.ram_latency_s == cost.ram_latency_s

    def test_scaled_does_not_mutate_original(self, cost):
        cost.scaled(ram_latency_s=1.0)
        assert cost.ram_latency_s != 1.0

    def test_frozen(self, cost):
        with pytest.raises(Exception):
            cost.ram_latency_s = 2.0
