"""Tests for the Milvus-like and pgvector-like baselines."""

import numpy as np
import pytest

from repro.baselines import MilvusLike, PgVectorLike
from repro.workloads import make_cohere_like, make_hybrid_workload, recall_at_k


@pytest.fixture(scope="module")
def dataset():
    return make_cohere_like(n=2000, dim=24, n_queries=25)


def load(cls, dataset, **kwargs):
    system = cls()
    system.load(
        dataset.vectors, dataset.scalars,
        index_type="HNSW", index_params={"m": 8, "ef_construction": 48},
        **kwargs,
    )
    return system


def measured_recall(system, workload, **params):
    results = []
    for qi in range(len(workload.queries)):
        ids, _ = system.search(
            workload.queries[qi], workload.k, mask=workload.masks[qi], **params
        )
        results.append(ids.tolist())
    return recall_at_k(results, workload.truth, workload.k)


class TestLoad:
    def test_load_charges_time(self, dataset):
        system = MilvusLike()
        elapsed = system.load(dataset.vectors, dataset.scalars)
        assert elapsed > 0
        assert system.ntotal == dataset.n

    def test_pgvector_load_slower_than_milvus(self, dataset):
        milvus = MilvusLike()
        pgvector = PgVectorLike()
        t_milvus = milvus.load(dataset.vectors, dataset.scalars)
        t_pg = pgvector.load(dataset.vectors, dataset.scalars)
        assert t_pg > t_milvus


class TestPureSearch:
    def test_both_reach_high_recall(self, dataset):
        workload = make_hybrid_workload(dataset, k=10)
        for cls in (MilvusLike, PgVectorLike):
            system = load(cls, dataset)
            assert measured_recall(system, workload, ef_search=100) > 0.9

    def test_pgvector_faster_than_milvus(self, dataset):
        """Paper Fig 9: pgvector and BlendHouse beat Milvus on pure
        vector search thanks to leaner execution."""
        workload = make_hybrid_workload(dataset, k=10)
        latencies = {}
        for cls in (MilvusLike, PgVectorLike):
            system = load(cls, dataset)
            start = system.clock.now
            for qi in range(len(workload.queries)):
                system.search(workload.queries[qi], 10, ef_search=64)
            latencies[cls.__name__] = system.clock.now - start
        assert latencies["PgVectorLike"] < latencies["MilvusLike"]


class TestHybridBehaviour:
    def test_milvus_prefilter_keeps_recall_at_low_pass(self, dataset):
        workload = make_hybrid_workload(dataset, k=10, pass_fraction=0.01)
        system = load(MilvusLike, dataset)
        assert measured_recall(system, workload, ef_search=100) > 0.9

    def test_milvus_brute_force_switch(self, dataset):
        workload = make_hybrid_workload(dataset, k=10, pass_fraction=0.01)
        system = load(MilvusLike, dataset)
        measured_recall(system, workload)
        assert system.metrics.count("milvus.brute_force_switches") > 0

    def test_pgvector_recall_collapses_at_low_pass(self, dataset):
        """Paper §V-B1: pgvector's non-iterative post-filter yields <10%
        recall when 99% of rows are filtered out."""
        workload = make_hybrid_workload(dataset, k=10, pass_fraction=0.01)
        system = load(PgVectorLike, dataset)
        assert measured_recall(system, workload, ef_search=64) < 0.3

    def test_pgvector_fine_at_high_pass(self, dataset):
        workload = make_hybrid_workload(dataset, k=10, pass_fraction=0.99)
        system = load(PgVectorLike, dataset)
        assert measured_recall(system, workload, ef_search=100) > 0.85

    def test_empty_filter_returns_empty(self, dataset):
        system = load(MilvusLike, dataset)
        mask = np.zeros(dataset.n, dtype=bool)
        ids, distances = system.search(dataset.queries[0], 5, mask=mask)
        assert len(ids) == 0


class TestPartitioning:
    def test_partitioned_load_and_prune(self, dataset):
        scalars = dict(dataset.scalars)
        scalars["part"] = [f"p{i % 4}" for i in range(dataset.n)]
        system = MilvusLike()
        system.load(dataset.vectors, scalars, partition_column="part")
        assert len(system._indexes) == 4
        ids, _ = system.search(
            dataset.queries[0], 5, partition_filter={"p0"}
        )
        part = scalars["part"]
        assert all(part[i] == "p0" for i in ids.tolist())

    def test_partition_pruning_cheaper(self, dataset):
        scalars = dict(dataset.scalars)
        scalars["part"] = [f"p{i % 4}" for i in range(dataset.n)]
        system = MilvusLike()
        system.load(
            dataset.vectors, scalars,
            index_type="HNSW", index_params={"m": 8, "ef_construction": 48},
            partition_column="part",
        )
        start = system.clock.now
        system.search(dataset.queries[0], 5)
        full = system.clock.now - start
        start = system.clock.now
        system.search(dataset.queries[0], 5, partition_filter={"p0"})
        pruned = system.clock.now - start
        assert pruned < full
