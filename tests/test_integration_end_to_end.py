"""End-to-end scenarios exercising the whole stack together."""

import numpy as np

from repro.core.database import BlendHouse
from repro.cluster.engine import ClusteredBlendHouse
from repro.workloads import (
    ground_truth,
    make_laion_like,
    make_cohere_like,
    recall_at_k,
)

from tests.helpers import vector_sql


class TestPaperExampleOne:
    """The full Example 1 lifecycle from the paper."""

    def test_example_one_lifecycle(self):
        db = BlendHouse()
        db.execute(
            """
            CREATE TABLE images (
              id UInt64,
              label String,
              published_time DateTime,
              embedding Array(Float32),
              INDEX ann_idx embedding TYPE HNSW('DIM=12')
            )
            ORDER BY published_time
            PARTITION BY (toYYYYMMDD(published_time), label)
            CLUSTER BY embedding INTO 4 BUCKETS;
            """
        )
        rng = np.random.default_rng(0)
        rows = [
            {
                "id": i,
                "label": ["animal", "plant"][i % 2],
                "published_time": 20241010 + (i % 3),
                "embedding": rng.normal(size=12).astype(np.float32),
            }
            for i in range(400)
        ]
        db.insert_rows("images", rows)

        # Partitioned by (day, label) and clustered into buckets.
        manager = db.table("images").manager
        partition_keys = {seg.meta.partition_key for seg in manager.segments()}
        assert len(partition_keys) == 6  # 3 days × 2 labels
        assert any(seg.meta.bucket_id is not None for seg in manager.segments())

        query = rows[8]["embedding"]
        result = db.execute(
            f"SELECT id, dist, published_time FROM images "
            f"WHERE label = 'animal' AND published_time >= 20241010 "
            f"ORDER BY L2Distance(embedding, {vector_sql(query)}) AS dist "
            f"LIMIT 10"
        )
        assert result.columns == ["id", "dist", "published_time"]
        assert result.rows[0][0] == 8
        assert all(rows[r[0]]["label"] == "animal" for r in result.rows)


class TestRecallEndToEnd:
    def test_engine_recall_matches_index_quality(self):
        ds = make_cohere_like(n=1500, dim=24, n_queries=20)
        db = BlendHouse()
        db.execute(
            "CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
            "INDEX ann embedding TYPE HNSW('DIM=24'))"
        )
        db.table("bench").writer.config.max_segment_rows = 800
        db.insert_columns(
            "bench",
            {"id": ds.scalars["id"], "attr": ds.scalars["attr"]},
            ds.vectors,
        )
        truth = ground_truth(ds.vectors, ds.queries, 10)
        db.settings.ef_search = 128
        results = []
        for qi in range(20):
            out = db.execute(
                f"SELECT id FROM bench ORDER BY "
                f"L2Distance(embedding, {vector_sql(ds.queries[qi])}) LIMIT 10"
            )
            results.append([row[0] for row in out.rows])
        assert recall_at_k(results, truth, 10) > 0.9


class TestSemanticPruningEndToEnd:
    def test_pruned_query_still_accurate(self):
        ds = make_cohere_like(n=1200, dim=16, n_queries=10)
        db = BlendHouse()
        db.execute(
            "CREATE TABLE clustered (id UInt64, attr Int64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=16')) "
            "CLUSTER BY embedding INTO 8 BUCKETS"
        )
        db.insert_columns(
            "clustered",
            {"id": ds.scalars["id"], "attr": ds.scalars["attr"]},
            ds.vectors,
        )
        assert len(db.table("clustered").manager) >= 4
        db.settings.semantic_prune_keep = 3
        truth = ground_truth(ds.vectors, ds.queries, 5)
        results = []
        for qi in range(10):
            out = db.execute(
                f"SELECT id FROM clustered ORDER BY "
                f"L2Distance(embedding, {vector_sql(ds.queries[qi])}) LIMIT 5"
            )
            results.append([row[0] for row in out.rows])
        # Clustered data + centroid pruning keeps recall high while
        # scanning a fraction of the segments.
        assert recall_at_k(results, truth, 5) > 0.8
        assert db.metrics.count("pruning.semantic_kept") <= 3 * 10

    def test_adaptive_widening_fires_when_needed(self):
        ds = make_cohere_like(n=600, dim=16, n_queries=1)
        db = BlendHouse()
        db.execute(
            "CREATE TABLE c2 (id UInt64, attr Int64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=16')) "
            "CLUSTER BY embedding INTO 6 BUCKETS"
        )
        db.insert_columns(
            "c2", {"id": ds.scalars["id"], "attr": ds.scalars["attr"]}, ds.vectors
        )
        db.settings.semantic_prune_keep = 1
        # Ask for more rows than a single bucket can hold → widening.
        smallest = min(seg.row_count for seg in db.table("c2").manager.segments())
        k = smallest + 50
        out = db.execute(
            f"SELECT id FROM c2 ORDER BY "
            f"L2Distance(embedding, {vector_sql(ds.queries[0])}) LIMIT {k}"
        )
        assert len(out) == k
        assert db.metrics.count("pruning.adaptive_widenings") >= 1


class TestLaionMultiPredicate:
    def test_regex_and_range_filters(self):
        ds = make_laion_like(n=800, dim=12, n_queries=5)
        db = BlendHouse()
        db.execute(
            "CREATE TABLE laion (id UInt64, caption String, similarity Float64, "
            "embedding Array(Float32), INDEX ann embedding TYPE FLAT('DIM=12'))"
        )
        db.insert_columns(
            "laion",
            {
                "id": ds.scalars["id"],
                "caption": ds.scalars["caption"],
                "similarity": ds.scalars["similarity"],
            },
            ds.vectors,
        )
        out = db.execute(
            f"SELECT id, caption, similarity FROM laion "
            f"WHERE caption REGEXP '^[0-9]' AND similarity BETWEEN 0.3 AND 1.0 "
            f"ORDER BY L2Distance(embedding, {vector_sql(ds.queries[0])}) LIMIT 10"
        )
        for _, caption, similarity in out.rows:
            assert caption[0].isdigit()
            assert 0.3 <= similarity <= 1.0


class TestClusterParityWithLocal:
    def test_cluster_and_local_agree(self):
        ds = make_cohere_like(n=900, dim=16, n_queries=5)
        ddl = (
            "CREATE TABLE par (id UInt64, attr Int64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=16'))"
        )
        local = BlendHouse()
        local.execute(ddl)
        local.table("par").writer.config.max_segment_rows = 300
        local.insert_columns(
            "par", {"id": ds.scalars["id"], "attr": ds.scalars["attr"]}, ds.vectors
        )

        clustered = ClusteredBlendHouse(read_workers=3)
        clustered.execute(ddl)
        clustered.db.table("par").writer.config.max_segment_rows = 300
        clustered.insert_columns(
            "par", {"id": ds.scalars["id"], "attr": ds.scalars["attr"]}, ds.vectors
        )
        clustered.preload("par")

        for qi in range(5):
            sql = (
                f"SELECT id FROM par WHERE attr < 9000 ORDER BY "
                f"L2Distance(embedding, {vector_sql(ds.queries[qi])}) LIMIT 10"
            )
            local_ids = [row[0] for row in local.execute(sql).rows]
            cluster_ids = [row[0] for row in clustered.execute(sql).rows]
            assert local_ids == cluster_ids


class TestMixedDml:
    def test_interleaved_writes_updates_queries(self, docs_db):
        db = docs_db
        vec = vector_sql(np.full(16, 0.5))
        db.execute(
            f"INSERT INTO docs (id, label, views, embedding) "
            f"VALUES (9000, 'fresh', 10, {vec})"
        )
        db.execute("UPDATE docs SET views = 999 WHERE id = 9000")
        db.execute("DELETE FROM docs WHERE id = 9000")
        db.execute(
            f"INSERT INTO docs (id, label, views, embedding) "
            f"VALUES (9001, 'fresh', 1, {vec})"
        )
        result = db.execute(
            f"SELECT id FROM docs WHERE label = 'fresh' "
            f"ORDER BY L2Distance(embedding, {vec}) LIMIT 5"
        )
        assert [row[0] for row in result.rows] == [9001]
