"""Tests for the local-disk cache tier."""

import pytest

from repro.errors import ObjectNotFoundError
from repro.storage.localdisk import LocalDisk


@pytest.fixture
def disk(clock, cost, metrics) -> LocalDisk:
    return LocalDisk(clock, capacity_bytes=100, cost_model=cost, metrics=metrics)


class TestWriteRead:
    def test_roundtrip(self, disk):
        assert disk.write("k", b"payload")
        assert disk.read("k") == b"payload"

    def test_miss_raises(self, disk):
        with pytest.raises(ObjectNotFoundError):
            disk.read("nope")

    def test_oversize_rejected(self, disk):
        assert not disk.write("big", b"x" * 101)
        assert "big" not in disk

    def test_capacity_validation(self, clock):
        with pytest.raises(ValueError):
            LocalDisk(clock, capacity_bytes=0)


class TestEviction:
    def test_lru_eviction_order(self, disk):
        disk.write("a", b"x" * 40)
        disk.write("b", b"x" * 40)
        disk.read("a")              # refresh a
        disk.write("c", b"x" * 40)  # evicts b (LRU)
        assert "a" in disk
        assert "b" not in disk
        assert "c" in disk

    def test_used_bytes_tracked(self, disk):
        disk.write("a", b"x" * 30)
        disk.write("b", b"x" * 30)
        assert disk.used_bytes == 60
        disk.evict("a")
        assert disk.used_bytes == 30

    def test_overwrite_replaces_size(self, disk):
        disk.write("a", b"x" * 50)
        disk.write("a", b"x" * 10)
        assert disk.used_bytes == 10

    def test_clear(self, disk):
        disk.write("a", b"x")
        disk.clear()
        assert disk.used_bytes == 0
        assert "a" not in disk

    def test_evict_missing_returns_false(self, disk):
        assert not disk.evict("ghost")


class TestCostsAndMetrics:
    def test_read_charges_clock(self, disk, clock):
        disk.write("k", b"x" * 50)
        before = clock.now
        disk.read("k")
        assert clock.now > before

    def test_hit_miss_counters(self, disk, metrics):
        disk.write("k", b"x")
        disk.read("k")
        with pytest.raises(ObjectNotFoundError):
            disk.read("ghost")
        assert metrics.count("localdisk.hits") == 1
        assert metrics.count("localdisk.misses") == 1

    def test_disk_cheaper_than_object_store(self, clock, cost):
        disk = LocalDisk(clock, capacity_bytes=10_000, cost_model=cost)
        disk.write("k", b"x" * 1000)
        before = clock.now
        disk.read("k")
        assert clock.now - before < cost.object_store_read(1000)
