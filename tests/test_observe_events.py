"""Structured event log: ring semantics, sinks, and engine emission.

The integration half drives the real engine — ingest, queries,
checkpoints, compaction — and asserts the control-plane transitions
show up as typed events in order, since the event log's whole value is
answering "what happened, when" after the fact.
"""

import io
import json

import numpy as np
import pytest

from repro.core.database import BlendHouse
from repro.observe.events import Event, EventLog, JsonlSink, emit_event
from repro.simulate.metrics import MetricRegistry
from repro.storage.cache import (
    HierarchicalIndexCache,
    LocalDisk,
    SplitIndexCache,
)


@pytest.fixture
def log(clock):
    return EventLog(clock)


class TestEventLog:
    def test_emit_records_clock_timestamp_and_seq(self, clock, log):
        clock.advance(1.5)
        event = log.emit("manifest.publish", manifest_id=3)
        assert event.timestamp == pytest.approx(1.5)
        assert event.seq == 0
        assert log.emit("snapshot.pin").seq == 1

    def test_ring_bounds_retention_and_counts_drops(self, clock):
        log = EventLog(clock, max_events=4)
        for i in range(10):
            log.emit("cache.eviction", i=i)
        assert len(log.events()) == 4
        assert log.dropped == 6
        # Stream accounting survives the wrap.
        assert log.count("cache.eviction") == 10
        assert [event.fields["i"] for event in log.events()] == [6, 7, 8, 9]

    def test_max_events_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            EventLog(clock, max_events=0)

    def test_filter_and_last(self, log):
        log.emit("wal.group_commit", nbytes=10)
        log.emit("checkpoint.swap", checkpoint_id=1)
        log.emit("wal.group_commit", nbytes=20)
        commits = log.events("wal.group_commit")
        assert [event.fields["nbytes"] for event in commits] == [10, 20]
        assert log.last("checkpoint.swap").fields["checkpoint_id"] == 1
        assert log.last("compaction.start") is None

    def test_summary_totals_by_type(self, log):
        log.emit("snapshot.pin")
        log.emit("snapshot.pin")
        log.emit("snapshot.unpin")
        summary = log.summary()
        assert summary["total"] == 3
        assert summary["by_type"] == {"snapshot.pin": 2, "snapshot.unpin": 1}

    def test_sink_sees_full_stream_past_ring_wrap(self, clock):
        log = EventLog(clock, max_events=2)
        sink = JsonlSink(io.StringIO())
        log.add_sink(sink)
        for i in range(5):
            log.emit("cache.promotion", i=i)
        assert sink.written == 5

    def test_jsonl_sink_writes_parseable_lines(self, clock, log):
        buffer = io.StringIO()
        log.add_sink(JsonlSink(buffer))
        log.emit("manifest.publish", manifest_id=7, segments=2)
        line = json.loads(buffer.getvalue())
        assert line["type"] == "manifest.publish"
        assert line["manifest_id"] == 7 and line["segments"] == 2

    def test_dump_jsonl_roundtrip(self, tmp_path, log):
        log.emit("compaction.start", inputs=[1, 2])
        log.emit("compaction.finish", output_segment_id=3)
        path = tmp_path / "events.jsonl"
        assert log.dump_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["type"] for line in lines] == [
            "compaction.start", "compaction.finish",
        ]

    def test_reserved_keys_win_over_field_collisions(self, clock, log):
        event = Event(0, 1.0, "x", fields={"seq": 99, "custom": 1})
        as_dict = event.to_dict()
        assert as_dict["seq"] == 0 and as_dict["custom"] == 1

    def test_clear_resets_stream_accounting(self, log):
        log.emit("snapshot.pin")
        log.clear()
        assert log.events() == [] and log.count("snapshot.pin") == 0
        assert log.emit("snapshot.pin").seq == 0


class TestEmitEventHelper:
    def test_noop_without_attached_log(self):
        registry = MetricRegistry()
        emit_event(registry, "cache.eviction", key="k")  # must not raise
        assert registry.events is None

    def test_emits_through_attached_log(self, clock):
        registry = MetricRegistry()
        registry.events = EventLog(clock)
        emit_event(registry, "cache.eviction", key="k")
        assert registry.events.count("cache.eviction") == 1


class TestEngineEmission:
    """The wired subsystems actually emit at their transitions."""

    def make_db(self, **kwargs):
        rng = np.random.default_rng(5)
        db = BlendHouse(**kwargs)
        db.execute(
            "CREATE TABLE t (id UInt64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=8'))"
        )
        # Four segments: enough inputs for the compaction fanout policy.
        db.table("t").writer.config.max_segment_rows = 30
        db.insert_rows(
            "t",
            [
                {"id": i, "embedding": rng.normal(size=8).astype(np.float32)}
                for i in range(120)
            ],
        )
        return db

    def query(self, db, seed=3):
        query = np.random.default_rng(seed).normal(size=8).astype(np.float32)
        vector = "[" + ",".join(f"{v:.5f}" for v in query) + "]"
        return db.execute(
            f"SELECT id, dist FROM t ORDER BY "
            f"L2Distance(embedding, {vector}) AS dist LIMIT 3"
        )

    def test_ingest_publishes_manifest(self):
        db = self.make_db()
        publishes = db.events.events("manifest.publish")
        assert publishes, "ingest must emit manifest.publish"
        assert publishes[-1].fields["table"] == "t"
        assert publishes[-1].fields["manifest_id"] >= 1

    def test_query_pins_and_unpins_snapshot(self):
        db = self.make_db()
        before_pin = db.events.count("snapshot.pin")
        before_unpin = db.events.count("snapshot.unpin")
        self.query(db)
        assert db.events.count("snapshot.pin") == before_pin + 1
        assert db.events.count("snapshot.unpin") == before_unpin + 1

    def test_cache_promotion_and_eviction_events(self, clock, cost, store):
        # The tiered index cache (worker read path) emits promotions on
        # every memory fill and evictions on capacity displacement.
        registry = MetricRegistry()
        registry.events = EventLog(clock)
        memory = SplitIndexCache(1 << 20, 24)  # data tier fits one value
        disk = LocalDisk(clock, 1 << 20, cost, registry)
        cache = HierarchicalIndexCache(
            clock, memory, disk, store, deserialize=bytes,
            cost_model=cost, metrics=registry,
        )
        store.put("idx-a", b"x" * 16)
        store.put("idx-b", b"y" * 16)

        cache.get("idx-a")  # remote miss -> memory fill
        promotion = registry.events.last("cache.promotion")
        assert promotion.fields["tier"] == "memory"
        assert promotion.fields["source"] == "remote"

        cache.get("idx-b")  # displaces idx-a from the memory tier
        eviction = registry.events.last("cache.eviction")
        assert eviction.fields["tier"] == "memory"
        assert eviction.fields["key"] == "idx-a"

        cache.get("idx-a")  # comes back from disk this time
        assert registry.events.last("cache.promotion").fields["source"] == "disk"

    def test_wal_and_checkpoint_events(self):
        db = self.make_db()
        assert db.events.count("wal.group_commit") > 0
        db.checkpoint(reason="test")
        swaps = db.events.events("checkpoint.swap")
        assert swaps and swaps[-1].fields["reason"] == "test"

    def test_compaction_emits_start_and_finish(self):
        db = self.make_db()
        db.compact("t")
        starts = db.events.events("compaction.start")
        finishes = db.events.events("compaction.finish")
        assert starts and finishes
        assert finishes[-1].fields["rows_out"] > 0
        # finish carries the published output segment.
        assert finishes[-1].fields["output_segment_id"]

    def test_retire_events_after_compaction_unpins(self):
        db = self.make_db()
        db.compact("t")
        retired = db.events.events("manifest.retire")
        assert retired, "compaction must retire the merged input segments"

    def test_events_ride_export_dict(self):
        db = self.make_db()
        self.query(db)
        snapshot = db.export_metrics().as_dict()
        assert snapshot["events"]["total"] == db.events.summary()["total"]
        assert snapshot["events"]["by_type"]["snapshot.pin"] >= 1

    def test_ordering_is_chronological(self):
        db = self.make_db()
        self.query(db)
        db.checkpoint(reason="order")
        events = db.events.events()
        assert all(
            a.timestamp <= b.timestamp and a.seq < b.seq
            for a, b in zip(events, events[1:])
        )
