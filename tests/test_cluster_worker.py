"""Tests for workers: cache tiers, serving, background loads."""

import numpy as np
import pytest

from repro.cluster.rpc import RpcFabric
from repro.cluster.serving import RemoteSearchProvider
from repro.cluster.worker import Worker
from repro.errors import WorkerUnavailableError
from repro.storage.lsm import index_storage_key
from repro.storage.segment import Segment
from repro.vindex.flat import FlatIndex
from repro.vindex.registry import serialize_index


@pytest.fixture
def world(clock, cost, store, metrics):
    """A persisted segment + index, a fabric, and two workers."""
    rng = np.random.default_rng(0)
    n = 80
    vectors = rng.normal(size=(n, 8)).astype(np.float32)
    segment = Segment.from_columns(
        "t/seg-0", "t", {"id": np.arange(n, dtype=np.uint64)}, vectors
    )
    segment.meta.index_type = "FLAT"
    index = FlatIndex(dim=8)
    index.add_with_ids(vectors, np.arange(n))
    key = index_storage_key(segment.segment_id, "FLAT")
    store.put(key, serialize_index(index))
    fabric = RpcFabric(clock, cost, metrics)
    owner = Worker("owner", clock, cost, store, fabric, metrics=metrics)
    newcomer = Worker("newcomer", clock, cost, store, fabric, metrics=metrics)
    return segment, key, owner, newcomer, vectors


class TestResolution:
    def test_no_index_key_is_brute(self, world):
        segment, _, owner, _, _ = world
        provider, tier = owner.resolve_provider(segment, None, None)
        assert provider is None and tier == "brute"

    def test_cold_miss_is_brute_with_background_load(self, world):
        segment, key, owner, _, _ = world
        provider, tier = owner.resolve_provider(segment, key, None)
        assert provider is None and tier == "brute"
        assert key in owner._pending_loads

    def test_preload_makes_local(self, world):
        segment, key, owner, _, _ = world
        assert owner.preload(key)
        provider, tier = owner.resolve_provider(segment, key, None)
        assert tier == "local"
        result = provider.search_with_filter(segment.vectors()[3], 1)
        assert result.ids[0] == 3

    def test_background_load_completes_with_time(self, world, clock):
        segment, key, owner, _, _ = world
        owner.resolve_provider(segment, key, None)  # schedules async load
        clock.advance(10.0)  # well past the fetch time
        provider, tier = owner.resolve_provider(segment, key, None)
        assert tier == "local"

    def test_disk_tier_after_memory_loss(self, world, clock):
        segment, key, owner, _, _ = world
        owner.preload(key)
        owner.cache.clear_memory()
        provider, tier = owner.resolve_provider(segment, key, None)
        assert tier == "disk"

    def test_serving_tier_via_previous_owner(self, world):
        segment, key, owner, newcomer, _ = world
        owner.preload(key)
        provider, tier = newcomer.resolve_provider(segment, key, owner)
        assert tier == "serving"
        assert isinstance(provider, RemoteSearchProvider)
        result = provider.search_with_filter(segment.vectors()[5], 1)
        assert result.ids[0] == 5

    def test_serving_disabled_falls_to_brute(self, world):
        segment, key, owner, newcomer, _ = world
        owner.preload(key)
        provider, tier = newcomer.resolve_provider(
            segment, key, owner, serving_enabled=False
        )
        assert tier == "brute"

    def test_previous_owner_without_cache_is_brute(self, world):
        segment, key, owner, newcomer, _ = world
        provider, tier = newcomer.resolve_provider(segment, key, owner)
        assert tier == "brute"


class TestServingEndpoint:
    def test_serve_search_requires_residency(self, world):
        segment, key, owner, _, _ = world
        with pytest.raises(WorkerUnavailableError):
            owner._serve_search(key, segment.vectors()[0], 1, None, {})

    def test_serve_search_with_bitset(self, world):
        segment, key, owner, _, _ = world
        owner.preload(key)
        bitset = np.zeros(segment.row_count, dtype=bool)
        bitset[10:20] = True
        result = owner._serve_search(key, segment.vectors()[0], 5, bitset, {})
        assert set(result.ids.tolist()) <= set(range(10, 20))


class TestInvalidation:
    def test_invalidate_drops_all_tiers(self, world):
        segment, key, owner, _, _ = world
        owner.preload(key)
        owner.invalidate(key)
        provider, tier = owner.resolve_provider(segment, key, None)
        assert tier == "brute"

    def test_lose_memory_clears_pending(self, world):
        segment, key, owner, _, _ = world
        owner.resolve_provider(segment, key, None)
        owner.lose_memory()
        assert not owner._pending_loads


class TestRemoteProviderCosts:
    def test_rpc_cost_charged(self, world, clock):
        segment, key, owner, newcomer, _ = world
        owner.preload(key)
        provider, _ = newcomer.resolve_provider(segment, key, owner)
        before = clock.now
        provider.search_with_filter(segment.vectors()[0], 3)
        assert clock.now > before

    def test_remote_iterator_works(self, world):
        segment, key, owner, newcomer, _ = world
        owner.preload(key)
        provider, _ = newcomer.resolve_provider(segment, key, owner)
        iterator = provider.search_iterator(segment.vectors()[0], batch_size=5)
        first = iterator.next_batch()
        second = iterator.next_batch()
        assert len(first) == 5 and len(second) == 5
        assert not set(first.ids.tolist()) & set(second.ids.tolist())

    def test_remote_range_search(self, world):
        segment, key, owner, newcomer, vectors = world
        owner.preload(key)
        provider, _ = newcomer.resolve_provider(segment, key, owner)
        query = vectors[0]
        distances = np.linalg.norm(vectors - query, axis=1)
        radius = float(np.sort(distances)[10])
        result = provider.search_with_range(query, radius)
        assert len(result) == 11
