"""Integration tests for the BlendHouse engine facade."""

import numpy as np
import pytest

from repro.core.database import BlendHouse
from repro.errors import (
    SQLError,
    TableAlreadyExistsError,
    TableNotFoundError,
)
from repro.planner.optimizer import ExecutionStrategy

from tests.helpers import vector_sql


def query_vector(db):
    return db._docs_rows[10]["embedding"]


def ann_sql(db, k=5, where="", select="id, dist"):
    where_text = f"WHERE {where} " if where else ""
    return (
        f"SELECT {select} FROM docs {where_text}"
        f"ORDER BY L2Distance(embedding, {vector_sql(query_vector(db))}) "
        f"AS dist LIMIT {k}"
    )


class TestDDL:
    def test_create_and_describe(self, docs_db):
        info = docs_db.describe("docs")
        assert info["vector_dim"] == 16
        assert info["index"] == "HNSW"
        assert info["rows_alive"] == 600

    def test_duplicate_create_rejected(self, docs_db):
        with pytest.raises(TableAlreadyExistsError):
            docs_db.execute(
                "CREATE TABLE docs (id UInt64, v Array(Float32))"
            )

    def test_if_not_exists(self, docs_db):
        docs_db.execute(
            "CREATE TABLE IF NOT EXISTS docs (id UInt64, v Array(Float32))"
        )

    def test_drop(self, docs_db):
        docs_db.execute("DROP TABLE docs")
        with pytest.raises(TableNotFoundError):
            docs_db.table("docs")

    def test_multiple_indexes_rejected(self):
        db = BlendHouse()
        with pytest.raises(SQLError):
            db.execute(
                "CREATE TABLE t (id UInt64, v Array(Float32), "
                "INDEX a v TYPE HNSW('DIM=4'), INDEX b v TYPE FLAT('DIM=4'))"
            )


class TestQueries:
    def test_self_query_top1(self, docs_db):
        result = docs_db.execute(ann_sql(docs_db, k=1))
        assert result.rows[0][0] == 10

    def test_hybrid_filter_respected(self, docs_db):
        result = docs_db.execute(
            ann_sql(docs_db, k=5, where="label = 'news'", select="id, label, dist")
        )
        assert all(row[1] == "news" for row in result.rows)
        distances = [row[2] for row in result.rows]
        assert distances == sorted(distances)

    def test_exactness_against_numpy(self, docs_db):
        rows = docs_db._docs_rows
        query = query_vector(docs_db)
        expected = sorted(
            (float(np.linalg.norm(r["embedding"] - query)), r["id"]) for r in rows
        )[:5]
        docs_db.settings.ef_search = 256  # enough beam for exact top-5
        result = docs_db.execute(ann_sql(docs_db, k=5))
        assert [row[0] for row in result.rows] == [rid for _, rid in expected]

    def test_insert_statement(self, docs_db):
        vec = vector_sql(np.zeros(16))
        docs_db.execute(
            f"INSERT INTO docs (id, label, views, embedding) "
            f"VALUES (9999, 'new', 1, {vec})"
        )
        result = docs_db.execute(
            "SELECT id FROM docs WHERE id = 9999 LIMIT 1"
        )
        assert result.rows[0][0] == 9999

    def test_update_then_query(self, docs_db):
        docs_db.execute("UPDATE docs SET label = 'edited' WHERE id = 10")
        result = docs_db.execute(ann_sql(docs_db, k=1, select="id, label, dist"))
        assert result.rows[0][1] == "edited"

    def test_delete_then_query(self, docs_db):
        docs_db.execute("DELETE FROM docs WHERE id = 10")
        result = docs_db.execute(ann_sql(docs_db, k=1))
        assert result.rows[0][0] != 10

    def test_range_query(self, docs_db):
        result = docs_db.execute(
            f"SELECT id FROM docs "
            f"WHERE L2Distance(embedding, {vector_sql(query_vector(docs_db))}) < 1.0"
        )
        assert result.strategy is ExecutionStrategy.RANGE
        assert 10 in [row[0] for row in result.rows]

    def test_unknown_table(self, docs_db):
        with pytest.raises(TableNotFoundError):
            docs_db.execute("SELECT id FROM ghost LIMIT 1")

    def test_csv_infile_missing_file(self, docs_db):
        with pytest.raises(FileNotFoundError):
            docs_db.execute("INSERT INTO docs CSV INFILE '/nonexistent/data.csv'")


class TestSettings:
    def test_set_statement_roundtrip(self, docs_db):
        docs_db.execute("SET enable_cbo = 0")
        assert not docs_db.settings.enable_cbo
        docs_db.execute("SET enable_cbo = 1")
        assert docs_db.settings.enable_cbo

    def test_unknown_setting(self, docs_db):
        with pytest.raises(SQLError):
            docs_db.execute("SET bogus = 1")

    def test_forced_strategy(self, docs_db):
        docs_db.execute("SET forced_strategy = 'brute_force'")
        result = docs_db.execute(ann_sql(docs_db, k=3, where="views < 900"))
        assert result.strategy is ExecutionStrategy.BRUTE_FORCE
        docs_db.execute("SET forced_strategy = 'auto'")
        assert docs_db.settings.forced_strategy is None

    def test_ef_search_override(self, docs_db):
        docs_db.execute("SET ef_search = 200")
        result = docs_db.execute(ann_sql(docs_db, k=3))
        assert len(result) == 3


class TestPlanCacheIntegration:
    def test_repeat_queries_hit_cache(self, docs_db):
        docs_db.execute(ann_sql(docs_db, k=3))
        hits_before = docs_db.plan_cache.hits
        docs_db.execute(ann_sql(docs_db, k=3))
        assert docs_db.plan_cache.hits == hits_before + 1

    def test_cache_hit_is_cheaper(self, docs_db):
        docs_db.settings.enable_semantic_pruning = False
        sql = ann_sql(docs_db, k=3, where="views < 990")
        first = docs_db.execute(sql).simulated_seconds
        second = docs_db.execute(sql).simulated_seconds
        assert second < first

    def test_insert_invalidates_cache(self, docs_db):
        docs_db.execute(ann_sql(docs_db, k=3))
        vec = vector_sql(np.zeros(16))
        docs_db.execute(
            f"INSERT INTO docs (id, label, views, embedding) VALUES (7777, 'x', 0, {vec})"
        )
        assert len(docs_db.plan_cache) == 0

    def test_cache_disabled(self, docs_db):
        docs_db.execute("SET enable_plan_cache = 0")
        docs_db.execute(ann_sql(docs_db, k=3))
        docs_db.execute(ann_sql(docs_db, k=3))
        assert docs_db.plan_cache.hits == 0


class TestCompactionIntegration:
    def test_manual_compaction(self, docs_db):
        # Fragment the table with single-row updates.
        for i in range(4):
            docs_db.execute(f"UPDATE docs SET views = 1 WHERE id = {i}")
        before = len(docs_db.table("docs").manager)
        results = docs_db.compact("docs")
        assert results
        assert len(docs_db.table("docs").manager) < before

    def test_query_correct_after_compaction(self, docs_db):
        docs_db.execute("UPDATE docs SET label = 'moved' WHERE id = 10")
        docs_db.compact("docs")
        result = docs_db.execute(ann_sql(docs_db, k=1, select="id, label, dist"))
        assert result.rows[0][0] == 10
        assert result.rows[0][1] == "moved"


class TestFeatureMatrix:
    def test_table_one_row(self):
        features = BlendHouse.feature_matrix()
        assert features["general_purpose"]
        assert features["disaggregated_architecture"]
        assert features["iterative_search"]
        assert "HNSW" in features["index_algorithms"]
