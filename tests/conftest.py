"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.database import BlendHouse
from repro.simulate.clock import SimulatedClock
from repro.simulate.costmodel import DeviceCostModel
from repro.simulate.metrics import MetricRegistry
from repro.storage.objectstore import ObjectStore
from tests.helpers import vector_sql  # noqa: F401 - re-exported for tests


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock()


@pytest.fixture
def cost() -> DeviceCostModel:
    return DeviceCostModel()


@pytest.fixture
def metrics() -> MetricRegistry:
    return MetricRegistry()


@pytest.fixture
def store(clock, cost, metrics) -> ObjectStore:
    return ObjectStore(clock, cost, metrics)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def small_vectors(n: int = 300, dim: int = 16, seed: int = 0) -> np.ndarray:
    """Deterministic small vector set shared across tests."""
    generator = np.random.default_rng(seed)
    return generator.normal(size=(n, dim)).astype(np.float32)


@pytest.fixture
def vectors() -> np.ndarray:
    return small_vectors()



@pytest.fixture(autouse=True)
def _mvcc_leak_guard():
    """With MVCC_LEAK_CHECK=1, fail any test that leaks snapshot pins.

    A pin that outlives its query blocks segment retirement forever; the
    concurrency-stress CI job runs the suite under this guard.
    """
    if os.environ.get("MVCC_LEAK_CHECK") != "1":
        yield
        return
    from repro.storage.manifest import live_pinned_snapshots

    before = live_pinned_snapshots()
    yield
    leaked = live_pinned_snapshots() - before
    assert leaked <= 0, f"{leaked} pinned snapshot(s) leaked by this test"


def pytest_sessionfinish(session, exitstatus):
    """Process-exit leak gates for the stress/proc CI jobs."""
    if os.environ.get("MVCC_LEAK_CHECK") == "1":
        from repro.storage.manifest import live_pinned_snapshots

        leaked = live_pinned_snapshots()
        if leaked:
            print(
                f"\nMVCC leak check: {leaked} pinned snapshot(s) still live "
                "at process exit"
            )
            session.exitstatus = 1
    if os.environ.get("SHM_LEAK_CHECK") == "1":
        # Shared-memory leak gate (proc-smoke CI job): after shutting
        # down the scan pool and collecting every segment, no /dev/shm
        # block created by this process may remain linked.
        import gc

        from repro.executor.procpool import shutdown_shared_pool
        from repro.storage.sharedblock import (
            live_block_names,
            orphaned_shm_names,
        )

        shutdown_shared_pool()
        gc.collect()
        orphans = orphaned_shm_names()
        if orphans:
            print(f"\nSHM leak check: orphaned /dev/shm blocks: {orphans}")
            session.exitstatus = 1
        still_linked = live_block_names()
        if still_linked:
            print(
                f"\nSHM leak check: {len(still_linked)} block(s) still "
                f"linked at exit: {still_linked[:5]}"
            )
            session.exitstatus = 1


@pytest.fixture
def docs_db(rng) -> BlendHouse:
    """An engine with a small populated table (HNSW index)."""
    db = BlendHouse()
    db.execute(
        "CREATE TABLE docs (id UInt64, label String, views UInt64, "
        "embedding Array(Float32), INDEX ann embedding TYPE HNSW('DIM=16'))"
    )
    rows = [
        {
            "id": i,
            "label": ["news", "sports", "tech"][i % 3],
            "views": int(rng.integers(0, 1000)),
            "embedding": rng.normal(size=16).astype(np.float32),
        }
        for i in range(600)
    ]
    db.insert_rows("docs", rows)
    db._docs_rows = rows  # stashed for assertions
    return db
