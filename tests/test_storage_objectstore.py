"""Tests for the simulated object store."""

import pytest

from repro.errors import ObjectNotFoundError


class TestPutGet:
    def test_roundtrip(self, store):
        store.put("a/b", b"hello")
        assert store.get("a/b") == b"hello"

    def test_missing_key_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get("nope")

    def test_empty_key_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("", b"x")

    def test_overwrite(self, store):
        store.put("k", b"one")
        store.put("k", b"two")
        assert store.get("k") == b"two"

    def test_payload_copied(self, store):
        payload = bytearray(b"abc")
        store.put("k", bytes(payload))
        payload[0] = ord("x")
        assert store.get("k") == b"abc"


class TestCostCharging:
    def test_put_charges_clock(self, clock, store):
        before = clock.now
        store.put("k", b"x" * 1024)
        assert clock.now > before

    def test_get_charges_latency_plus_bandwidth(self, clock, cost, store):
        store.put("k", b"x" * (1 << 20))
        before = clock.now
        store.get("k")
        charged = clock.now - before
        assert charged == pytest.approx(cost.object_store_read(1 << 20))

    def test_get_range_charges_only_slice(self, clock, cost, store):
        store.put("k", b"x" * (1 << 20))
        before = clock.now
        window = store.get_range("k", 0, 1024)
        assert len(window) == 1024
        charged = clock.now - before
        assert charged < cost.object_store_read(1 << 20)

    def test_exists_charges_one_latency(self, clock, cost, store):
        store.put("k", b"x")
        before = clock.now
        assert store.exists("k")
        assert clock.now - before == pytest.approx(cost.object_store_latency_s)


class TestRangeReads:
    def test_get_range_content(self, store):
        store.put("k", b"0123456789")
        assert store.get_range("k", 2, 3) == b"234"

    def test_get_range_past_end_truncates(self, store):
        store.put("k", b"0123")
        assert store.get_range("k", 2, 100) == b"23"

    def test_get_range_missing_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get_range("nope", 0, 1)

    def test_negative_offset_rejected(self, store):
        store.put("k", b"x")
        with pytest.raises(ValueError):
            store.get_range("k", -1, 1)


class TestManagement:
    def test_delete(self, store):
        store.put("k", b"x")
        assert store.delete("k")
        assert not store.delete("k")
        assert "k" not in store

    def test_list_keys_prefix(self, store):
        store.put("seg/1", b"a")
        store.put("seg/2", b"b")
        store.put("idx/1", b"c")
        assert store.list_keys("seg/") == ["seg/1", "seg/2"]

    def test_size_of(self, store):
        store.put("k", b"x" * 7)
        assert store.size_of("k") == 7

    def test_size_of_missing_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.size_of("ghost")

    def test_total_bytes_and_len(self, store):
        store.put("a", b"12")
        store.put("b", b"345")
        assert store.total_bytes() == 5
        assert len(store) == 2

    def test_metrics_counters(self, store, metrics):
        store.put("k", b"x")
        store.get("k")
        assert metrics.count("objectstore.put") == 1
        assert metrics.count("objectstore.get") == 1
