"""Tests for CSV bulk loading (INSERT INTO ... CSV INFILE)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog.schema import TableSchema
from repro.core.database import BlendHouse
from repro.errors import SchemaError
from repro.ingest.csvload import parse_vector_cell, read_csv_rows, write_csv_rows
from repro.sqlparser.ast_nodes import ColumnDef
from repro.vindex.registry import IndexSpec

from tests.helpers import vector_sql


def make_schema(dim=4):
    return TableSchema.from_ddl(
        "t",
        [
            ColumnDef("id", "UInt64"),
            ColumnDef("label", "String"),
            ColumnDef("score", "Float64"),
            ColumnDef("embedding", "Array", ("Float32",)),
        ],
        index_spec=IndexSpec(index_type="FLAT", dim=dim, column="embedding"),
    )


class TestVectorCell:
    def test_bracketed(self):
        np.testing.assert_allclose(
            parse_vector_cell("[0.1, -0.2, 3]"), [0.1, -0.2, 3.0], rtol=1e-6
        )

    def test_unbracketed(self):
        np.testing.assert_allclose(parse_vector_cell("1,2"), [1.0, 2.0])

    def test_empty(self):
        assert parse_vector_cell("[]").size == 0

    def test_malformed(self):
        with pytest.raises(SchemaError):
            parse_vector_cell("[a, b]")


class TestReadCsv:
    def write(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_with_header_any_order(self, tmp_path):
        path = self.write(
            tmp_path,
            'label,id,embedding,score\n'
            'cat,1,"[0.1, 0.2, 0.3, 0.4]",0.5\n'
            'dog,2,"[1, 0, 0, 0]",0.25\n',
        )
        rows = read_csv_rows(path, make_schema())
        assert rows[0]["id"] == 1 and rows[0]["label"] == "cat"
        np.testing.assert_allclose(rows[1]["embedding"], [1, 0, 0, 0])

    def test_without_header_ddl_order(self, tmp_path):
        path = self.write(
            tmp_path, '3,bird,0.75,"[0, 1, 0, 0]"\n'
        )
        rows = read_csv_rows(path, make_schema())
        assert rows[0]["id"] == 3 and rows[0]["label"] == "bird"

    def test_explicit_columns(self, tmp_path):
        path = self.write(tmp_path, '"[0,0,0,1]",9,x,0.1\n')
        rows = read_csv_rows(
            path, make_schema(), columns=["embedding", "id", "label", "score"]
        )
        assert rows[0]["id"] == 9

    def test_arity_mismatch(self, tmp_path):
        path = self.write(tmp_path, "1,cat\n")
        with pytest.raises(SchemaError):
            read_csv_rows(path, make_schema())

    def test_bad_numeric_cell(self, tmp_path):
        path = self.write(tmp_path, 'oops,cat,0.5,"[0,0,0,0]"\n')
        with pytest.raises(SchemaError):
            read_csv_rows(path, make_schema())

    def test_empty_file(self, tmp_path):
        path = self.write(tmp_path, "")
        assert read_csv_rows(path, make_schema()) == []


class TestEndToEnd:
    def test_insert_csv_infile_sql(self, tmp_path, rng):
        db = BlendHouse()
        db.execute(
            "CREATE TABLE t (id UInt64, label String, score Float64, "
            "embedding Array(Float32), INDEX ann embedding TYPE FLAT('DIM=4'))"
        )
        schema = db.table("t").entry.schema
        rows = [
            {"id": i, "label": f"l{i % 2}", "score": float(i) / 10,
             "embedding": rng.normal(size=4).astype(np.float32)}
            for i in range(40)
        ]
        path = tmp_path / "bulk.csv"
        write_csv_rows(str(path), schema, rows)
        report = db.execute(f"INSERT INTO t CSV INFILE '{path}'")
        assert report.rows == 40
        query = rows[5]["embedding"]
        result = db.execute(
            f"SELECT id, label FROM t ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) LIMIT 1"
        )
        assert result.rows[0] == (5, "l1")

    @given(
        n=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, tmp_path_factory, n, seed):
        """write_csv_rows . read_csv_rows is the identity on valid rows."""
        schema = make_schema()
        gen = np.random.default_rng(seed)
        rows = [
            {"id": i, "label": f"w{int(gen.integers(5))}",
             "score": round(float(gen.random()), 6),
             "embedding": gen.normal(size=4).astype(np.float32)}
            for i in range(n)
        ]
        path = tmp_path_factory.mktemp("csv") / "x.csv"
        write_csv_rows(str(path), schema, rows)
        parsed = read_csv_rows(str(path), schema)
        assert len(parsed) == n
        for original, loaded in zip(rows, parsed):
            assert loaded["id"] == original["id"]
            assert loaded["label"] == original["label"]
            assert loaded["score"] == pytest.approx(original["score"])
            np.testing.assert_allclose(
                loaded["embedding"], original["embedding"], rtol=1e-5
            )
