"""Unit tests for the ANN physical scan operators."""

import numpy as np
import pytest

from repro.executor.annscan import (
    ScanCharger,
    brute_force_scan,
    search_iterator_op,
    search_with_filter_op,
    search_with_range_op,
)
from repro.simulate.clock import SimulatedClock
from repro.simulate.costmodel import DeviceCostModel
from repro.simulate.metrics import MetricRegistry
from repro.storage.segment import Segment
from repro.vindex.flat import FlatIndex
from repro.vindex.ivfpq import IVFPQIndex

DIM = 8
N = 120


@pytest.fixture
def segment():
    rng = np.random.default_rng(0)
    return Segment.from_columns(
        "t/s0", "t", {"id": np.arange(N, dtype=np.uint64)},
        rng.normal(size=(N, DIM)).astype(np.float32),
    )


@pytest.fixture
def flat_index(segment):
    index = FlatIndex(dim=DIM)
    index.add_with_ids(segment.vectors(), np.arange(N))
    return index


def charger(clock, index_type=None):
    return ScanCharger(
        clock=clock, cost=DeviceCostModel(), metrics=MetricRegistry(),
        dim=DIM, index_type=index_type,
    )


class TestBruteForce:
    def test_matches_numpy(self, segment, clock):
        query = segment.vectors()[5] + 0.01
        result = brute_force_scan(segment, query, 5, "l2", None, charger(clock))
        expected = np.argsort(
            np.linalg.norm(segment.vectors() - query, axis=1)
        )[:5]
        np.testing.assert_array_equal(result.ids, expected)

    def test_allowed_mask(self, segment, clock):
        allowed = np.zeros(N, dtype=bool)
        allowed[10:20] = True
        result = brute_force_scan(
            segment, segment.vectors()[0], 5, "l2", allowed, charger(clock)
        )
        assert set(result.ids.tolist()) <= set(range(10, 20))

    def test_empty_mask(self, segment, clock):
        result = brute_force_scan(
            segment, segment.vectors()[0], 5, "l2",
            np.zeros(N, dtype=bool), charger(clock),
        )
        assert len(result) == 0

    def test_charges_full_scan(self, segment, clock):
        before = clock.now
        brute_force_scan(segment, segment.vectors()[0], 5, "l2", None, charger(clock))
        cost = DeviceCostModel()
        assert clock.now - before == pytest.approx(cost.distance_cost(N, DIM))


class TestSearchWithFilterOp:
    def test_provider_path(self, segment, flat_index, clock):
        result = search_with_filter_op(
            flat_index, segment, segment.vectors()[3], 4, "l2",
            None, charger(clock),
        )
        assert result.ids[0] == 3

    def test_none_provider_falls_back(self, segment, clock, metrics):
        c = ScanCharger(clock=clock, cost=DeviceCostModel(), metrics=metrics,
                        dim=DIM, index_type=None)
        result = search_with_filter_op(
            None, segment, segment.vectors()[3], 4, "l2", None, c,
        )
        assert result.ids[0] == 3
        assert metrics.count("annscan.brute_force_rows") == N

    def test_pq_charges_adc_and_refine(self, segment, clock):
        index = IVFPQIndex(dim=DIM, nlist=4, m=4)
        index.train(segment.vectors())
        index.add_with_ids(segment.vectors(), np.arange(N))
        index.set_refiner(lambda ids: segment.vectors_at(ids))
        c = charger(clock, index_type="IVFPQ")
        before = clock.now
        search_with_filter_op(
            index, segment, segment.vectors()[0], 4, "l2", None, c, sigma=2.0,
            nprobe=4,
        )
        assert clock.now > before  # ADC + refine charged


class TestRangeOp:
    def test_provider_and_fallback_agree(self, segment, flat_index, clock):
        query = segment.vectors()[0]
        radius = 3.0
        with_index = search_with_range_op(
            flat_index, segment, query, radius, "l2", None, charger(clock)
        )
        without = search_with_range_op(
            None, segment, query, radius, "l2", None, charger(clock)
        )
        assert set(with_index.ids.tolist()) == set(without.ids.tolist())

    def test_bitset_respected_in_fallback(self, segment, clock):
        allowed = np.zeros(N, dtype=bool)
        allowed[::2] = True
        result = search_with_range_op(
            None, segment, segment.vectors()[0], 100.0, "l2", allowed,
            charger(clock),
        )
        assert all(i % 2 == 0 for i in result.ids.tolist())


class TestIteratorOp:
    def test_brute_iterator_streams_sorted(self, segment, clock):
        iterator = search_iterator_op(
            None, segment, segment.vectors()[0], "l2", None, charger(clock), 10,
        )
        distances = []
        while not iterator.exhausted:
            batch = iterator.next_batch()
            if len(batch) == 0:
                break
            distances.extend(batch.distances.tolist())
        assert distances == sorted(distances)
        assert len(distances) == N

    def test_charging_iterator_matches_cumulative_visits(self, segment, flat_index):
        """Charged compute equals the iterator's cumulative visit count —
        deltas are charged exactly once, including restart re-scans."""
        clock = SimulatedClock()
        c = charger(clock)
        iterator = search_iterator_op(
            flat_index, segment, segment.vectors()[0], "l2", None, c, 10,
        )
        batch = iterator.next_batch()
        for _ in range(3):
            batch = iterator.next_batch()
        cost = DeviceCostModel()
        expected = cost.distance_cost(batch.visited, DIM)
        assert clock.now == pytest.approx(expected)

    def test_iterator_respects_bitset(self, segment, flat_index, clock):
        allowed = np.zeros(N, dtype=bool)
        allowed[:30] = True
        iterator = search_iterator_op(
            flat_index, segment, segment.vectors()[0], "l2", allowed,
            charger(clock), 8,
        )
        collected = []
        for _ in range(10):
            if iterator.exhausted:
                break
            batch = iterator.next_batch()
            if len(batch) == 0:
                break
            collected.extend(batch.ids.tolist())
        assert set(collected) == set(range(30))
