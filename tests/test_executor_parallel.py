"""Tests for the parallel segment fan-out and batched execution engine.

The contract under test: for any thread-pool size, any index type, and
any segment layout, parallel execution returns byte-identical results to
serial execution — including distance ties — and simulated time only
improves.  Batched (nq > 1) submissions must match issuing the same
queries sequentially.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import BlendHouse
from repro.executor.parallel import ParallelConfig, fan_out, lane_makespan
from repro.simulate.clock import SimulatedClock


def full_vector_sql(vector) -> str:
    """Full-precision literal so SQL round-trips the exact float32s."""
    return "[" + ",".join(repr(float(x)) for x in vector) + "]"


DIM = 8
INDEX_TYPES = ["FLAT", "IVFFLAT", "HNSW", "DISKANN"]


def build_db(
    index_type: str,
    segments: int = 6,
    rows_per_segment: int = 40,
    workers: int = 1,
    seed: int = 0,
) -> BlendHouse:
    db = BlendHouse()
    db.execute(
        f"CREATE TABLE t (id UInt64, tag Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE {index_type}('DIM={DIM}'))"
    )
    db.table("t").writer.config.max_segment_rows = rows_per_segment
    rng = np.random.default_rng(seed)
    n = segments * rows_per_segment
    vectors = rng.standard_normal((n, DIM)).astype(np.float32)
    db.insert_columns(
        "t",
        {"id": np.arange(n, dtype=np.int64), "tag": np.arange(n, dtype=np.int64) % 5},
        vectors,
    )
    if workers > 1:
        db.execute(f"SET parallel_workers = {workers}")
    return db


def run_queries(db: BlendHouse, queries, sql_of) -> list:
    return [
        [tuple(row) for row in db.execute(sql_of(query)).rows] for query in queries
    ]


class TestLaneMakespan:
    def test_one_lane_is_serial_sum(self):
        costs = [3.0, 1.0, 2.0]
        assert lane_makespan(costs, 1) == pytest.approx(6.0)

    def test_enough_lanes_is_max(self):
        costs = [3.0, 1.0, 2.0]
        assert lane_makespan(costs, 3) == pytest.approx(3.0)
        assert lane_makespan(costs, 10) == pytest.approx(3.0)

    def test_lpt_packing(self):
        # LPT on 2 lanes: [4] vs [3, 2] -> makespan 5 (not 4+3=7).
        assert lane_makespan([4.0, 3.0, 2.0], 2) == pytest.approx(5.0)

    def test_empty_and_clamping(self):
        assert lane_makespan([], 4) == 0.0
        assert lane_makespan([1.0], 0) == pytest.approx(1.0)

    def test_never_worse_than_parallel_lower_bound(self):
        rng = np.random.default_rng(3)
        costs = rng.random(17).tolist()
        for lanes in (1, 2, 3, 8, 32):
            span = lane_makespan(costs, lanes)
            assert span >= max(costs) - 1e-12
            assert span <= sum(costs) + 1e-12


class TestFanOut:
    def test_results_in_task_order_any_pool_size(self):
        clock = SimulatedClock()

        def make(i):
            def task():
                clock.advance(0.001 * (i + 1))
                return i * 10
            return task

        tasks = [make(i) for i in range(9)]
        for pool in (1, 2, 8):
            results, costs = fan_out(clock, tasks, pool)
            assert results == [i * 10 for i in range(9)]
            assert costs == pytest.approx([0.001 * (i + 1) for i in range(9)])
            # Charges were captured, not applied.
            assert clock.now == 0.0

    def test_concurrent_charges_do_not_race(self):
        clock = SimulatedClock()

        def task():
            for _ in range(200):
                clock.advance(1e-6)
            return True

        results, costs = fan_out(clock, [task] * 16, 8)
        assert all(results)
        assert costs == pytest.approx([2e-4] * 16)
        assert clock.now == 0.0


class TestParallelDeterminism:
    @pytest.mark.parametrize("index_type", INDEX_TYPES)
    def test_identical_results_across_pool_sizes(self, index_type):
        queries = np.random.default_rng(7).standard_normal((4, DIM)).astype(np.float32)

        def sql_of(query):
            return (
                f"SELECT id, dist FROM t ORDER BY "
                f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 10"
            )

        serial = run_queries(build_db(index_type), queries, sql_of)
        for workers in (2, 8):
            parallel = run_queries(
                build_db(index_type, workers=workers), queries, sql_of
            )
            assert parallel == serial, f"{index_type} diverged at {workers} workers"

    def test_distance_ties_break_identically(self):
        # Duplicate vectors across segments force exact distance ties;
        # the merge's (distance, segment_id, offset) ordering must hold
        # for any pool size.
        def build(workers):
            db = BlendHouse()
            db.execute(
                f"CREATE TABLE t (id UInt64, embedding Array(Float32), "
                f"INDEX ann embedding TYPE FLAT('DIM={DIM}'))"
            )
            db.table("t").writer.config.max_segment_rows = 10
            base = np.random.default_rng(1).standard_normal((10, DIM))
            vectors = np.tile(base, (6, 1)).astype(np.float32)  # 6 identical segments
            db.insert_columns(
                "t", {"id": np.arange(60, dtype=np.int64)}, vectors
            )
            if workers > 1:
                db.execute(f"SET parallel_workers = {workers}")
            return db

        query = np.zeros(DIM, dtype=np.float32)
        sql = (
            f"SELECT id, dist FROM t ORDER BY "
            f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 30"
        )
        expected = [tuple(row) for row in build(1).execute(sql).rows]
        for workers in (2, 8):
            got = [tuple(row) for row in build(workers).execute(sql).rows]
            assert got == expected

    def test_hybrid_predicate_queries_match(self):
        queries = np.random.default_rng(11).standard_normal((3, DIM)).astype(np.float32)

        def sql_of(query):
            return (
                f"SELECT id, tag, dist FROM t WHERE tag < 3 ORDER BY "
                f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 10"
            )

        serial = run_queries(build_db("HNSW"), queries, sql_of)
        parallel = run_queries(build_db("HNSW", workers=8), queries, sql_of)
        assert parallel == serial

    def test_parallel_simulated_latency_never_worse(self):
        query = np.random.default_rng(2).standard_normal(DIM).astype(np.float32)
        sql = (
            f"SELECT id FROM t ORDER BY "
            f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 5"
        )
        latencies = {}
        for workers in (1, 8):
            db = build_db("FLAT", segments=8, workers=workers)
            db.execute(sql)  # warm caches
            latencies[workers] = db.execute(sql).simulated_seconds
        assert latencies[8] <= latencies[1]

    @settings(max_examples=15, deadline=None)
    @given(
        layout=st.lists(st.integers(min_value=5, max_value=40), min_size=1, max_size=6),
        workers=st.sampled_from([2, 3, 8]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_hypothesis_segment_layouts(self, layout, workers, seed):
        """Any segment layout: parallel rows identical to serial rows."""
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((sum(layout), DIM)).astype(np.float32)
        query = rng.standard_normal(DIM).astype(np.float32)
        sql = (
            f"SELECT id, dist FROM t ORDER BY "
            f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 7"
        )

        def build(parallel_workers):
            db = BlendHouse()
            db.execute(
                f"CREATE TABLE t (id UInt64, embedding Array(Float32), "
                f"INDEX ann embedding TYPE FLAT('DIM={DIM}'))"
            )
            offset = 0
            for rows in layout:
                db.table("t").writer.config.max_segment_rows = rows
                db.insert_columns(
                    "t",
                    {"id": np.arange(offset, offset + rows, dtype=np.int64)},
                    vectors[offset:offset + rows],
                )
                offset += rows
            if parallel_workers > 1:
                db.execute(f"SET parallel_workers = {parallel_workers}")
            return db

        serial = [tuple(row) for row in build(1).execute(sql).rows]
        parallel = [tuple(row) for row in build(workers).execute(sql).rows]
        assert parallel == serial


class TestParallelWithDeletes:
    def test_deletes_respected_under_concurrency(self):
        """Stress: delete bitmaps mixed with concurrent scans."""
        def build(workers):
            db = build_db("FLAT", segments=8, rows_per_segment=30, workers=workers)
            db.execute("DELETE FROM t WHERE tag = 2")
            db.execute("DELETE FROM t WHERE id < 25")
            return db

        queries = np.random.default_rng(5).standard_normal((5, DIM)).astype(np.float32)

        def sql_of(query):
            return (
                f"SELECT id, tag, dist FROM t ORDER BY "
                f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 20"
            )

        serial = run_queries(build(1), queries, sql_of)
        for rows in serial:
            for row in rows:
                assert row[1] != 2 and row[0] >= 25
        for workers in (2, 8):
            assert run_queries(build(workers), queries, sql_of) == serial

    def test_interleaved_deletes_and_parallel_queries(self):
        db = build_db("FLAT", segments=6, rows_per_segment=30, workers=8)
        query = np.random.default_rng(9).standard_normal(DIM).astype(np.float32)
        sql = (
            f"SELECT id FROM t ORDER BY "
            f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 200"
        )
        alive = set(range(180))
        for step in range(4):
            victim_low, victim_high = step * 20, step * 20 + 10
            db.execute(f"DELETE FROM t WHERE id >= {victim_low} AND id < {victim_high}")
            alive -= set(range(victim_low, victim_high))
            ids = {row[0] for row in db.execute(sql).rows}
            assert ids == alive


class TestBatchedExecution:
    @pytest.mark.parametrize("index_type", ["FLAT", "IVFFLAT", "HNSW"])
    def test_search_batch_matches_sequential(self, index_type):
        db = build_db(index_type, segments=5)
        queries = np.random.default_rng(21).standard_normal((6, DIM)).astype(np.float32)
        sequential = run_queries(
            db, queries,
            lambda q: (
                f"SELECT id, dist FROM t ORDER BY "
                f"L2Distance(embedding, {full_vector_sql(q)}) AS dist LIMIT 9"
            ),
        )
        batch = db.search_batch("t", queries, k=9)
        assert len(batch) == len(queries)
        got = [[tuple(row) for row in result.rows] for result in batch.results]
        assert got == sequential

    def test_search_batch_single_query_and_vector_shape(self):
        db = build_db("FLAT", segments=3)
        query = np.random.default_rng(4).standard_normal(DIM).astype(np.float32)
        batch = db.search_batch("t", query, k=5)  # 1-D input
        assert len(batch) == 1
        assert len(batch[0].rows) == 5

    def test_execute_batch_same_shape_sql(self):
        db = build_db("FLAT", segments=4, workers=2)
        queries = np.random.default_rng(31).standard_normal((4, DIM)).astype(np.float32)
        sqls = [
            f"SELECT id, dist FROM t ORDER BY "
            f"L2Distance(embedding, {full_vector_sql(q)}) AS dist LIMIT 6"
            for q in queries
        ]
        sequential = [
            [tuple(row) for row in db.execute(sql).rows] for sql in sqls
        ]
        batched = db.execute_batch(sqls)
        assert [[tuple(r) for r in out.rows] for out in batched] == sequential
        assert db.metrics.count("batch.submissions") == 1

    def test_execute_batch_mixed_statements_fall_back(self):
        db = build_db("FLAT", segments=3)
        query = np.random.default_rng(41).standard_normal(DIM).astype(np.float32)
        sqls = [
            f"SELECT id, dist FROM t ORDER BY "
            f"L2Distance(embedding, {full_vector_sql(query)}) AS dist LIMIT 4",
            "SELECT id FROM t WHERE tag = 1",
        ]
        outs = db.execute_batch(sqls)
        assert len(outs) == 2
        assert len(outs[0].rows) == 4
        assert all(row[0] % 5 == 1 for row in outs[1].rows)
        assert db.metrics.count("batch.fallbacks") == 1
        assert db.metrics.count("batch.submissions") == 0

    def test_batch_respects_deletes(self):
        db = build_db("FLAT", segments=4)
        db.execute("DELETE FROM t WHERE tag = 0")
        queries = np.random.default_rng(51).standard_normal((3, DIM)).astype(np.float32)
        batch = db.search_batch("t", queries, k=50, output_columns=("id", "tag"))
        for result in batch.results:
            assert result.rows
            for row in result.rows:
                assert row[1] != 0

    def test_batch_cheaper_than_sequential(self):
        db = build_db("FLAT", segments=6, rows_per_segment=100)
        queries = np.random.default_rng(61).standard_normal((16, DIM)).astype(np.float32)
        sqls = [
            f"SELECT id FROM t ORDER BY "
            f"L2Distance(embedding, {full_vector_sql(q)}) AS dist LIMIT 10"
            for q in queries
        ]
        db.execute(sqls[0])  # warm caches
        start = db.clock.now
        for sql in sqls:
            db.execute(sql)
        sequential_elapsed = db.clock.now - start
        start = db.clock.now
        db.search_batch("t", queries, k=10)
        batch_elapsed = db.clock.now - start
        assert batch_elapsed < sequential_elapsed

    def test_empty_batch(self):
        db = build_db("FLAT", segments=2)
        assert db.execute_batch([]) == []


class TestClockThreadSafety:
    def test_capture_stacks_are_thread_local(self):
        import threading

        clock = SimulatedClock()
        seen = {}

        def worker(name, amount):
            with clock.capturing() as captured:
                clock.advance(amount)
            seen[name] = captured.total

        threads = [
            threading.Thread(target=worker, args=(f"t{i}", 0.01 * (i + 1)))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == pytest.approx(
            {f"t{i}": 0.01 * (i + 1) for i in range(4)}
        )
        assert clock.now == 0.0


class TestParallelConfig:
    def test_effective_workers(self):
        config = ParallelConfig(max_workers=8)
        assert config.effective_workers(3) == 3
        assert config.effective_workers(20) == 8
        assert config.effective_workers(0) == 1

    def test_parallel_workers_setting_validation(self):
        db = build_db("FLAT", segments=2)
        db.execute("SET parallel_workers = 4")
        assert db.settings.parallel_workers == 4
        db.execute("SET parallel_workers = 1")
        assert db.settings.parallel_workers == 1
