"""Tests for auto-index parameter selection."""

import numpy as np
import pytest

from repro.vindex.autoindex import (
    MIN_TRAIN_POINTS_PER_CENTROID,
    auto_build_spec,
    select_ivf_nlist,
    select_nprobe,
    tune_nlist_by_probe,
)
from repro.vindex.registry import IndexSpec


class TestRule:
    def test_monotone_in_n(self):
        values = [select_ivf_nlist(n) for n in (100, 1_000, 10_000, 100_000)]
        assert values == sorted(values)

    def test_training_points_constraint(self):
        for n in (100, 1_000, 50_000):
            nlist = select_ivf_nlist(n)
            assert n // max(nlist, 1) >= MIN_TRAIN_POINTS_PER_CENTROID or nlist == 1

    def test_tiny_segments_get_one_cell(self):
        assert select_ivf_nlist(0) == 1
        assert select_ivf_nlist(10) == 1

    def test_sqrt_shape(self):
        # 4·sqrt(1e6) = 4000, clamped by training constraint (25641).
        assert select_ivf_nlist(1_000_000) == 4000


class TestNprobe:
    def test_target_beta(self):
        assert select_nprobe(100, target_beta=0.1) == 10

    def test_at_least_one(self):
        assert select_nprobe(4, target_beta=0.01) == 1

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            select_nprobe(10, target_beta=0)


class TestSpecAdjustment:
    def test_ivf_spec_gets_nlist(self):
        spec = IndexSpec(index_type="IVFFLAT", dim=8)
        adjusted = auto_build_spec(spec, 10_000)
        assert adjusted.params["nlist"] == select_ivf_nlist(10_000)

    def test_explicit_nlist_wins(self):
        spec = IndexSpec(index_type="IVFFLAT", dim=8, params={"nlist": 3})
        assert auto_build_spec(spec, 10_000).params["nlist"] == 3

    def test_graph_specs_untouched(self):
        spec = IndexSpec(index_type="HNSW", dim=8, params={"m": 8})
        assert auto_build_spec(spec, 10_000) is spec


class TestMeasuredTuning:
    def test_tune_returns_candidate_with_timings(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(600, 8)).astype(np.float32)
        queries = data[:5]
        best, timings = tune_nlist_by_probe(data, [2, 8, 32], queries, k=5)
        assert best in timings
        assert set(timings) == {2, 8, 32}
        assert all(t > 0 for t in timings.values())

    def test_tune_skips_invalid_candidates(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 8)).astype(np.float32)
        best, timings = tune_nlist_by_probe(data, [0, 4, 999], data[:2], k=3)
        assert set(timings) == {4}
        assert best == 4

    def test_tune_no_candidates_rejected(self):
        data = np.zeros((10, 4), dtype=np.float32)
        with pytest.raises(ValueError):
            tune_nlist_by_probe(data, [0], data[:1])
