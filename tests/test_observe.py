"""Tests for the observability layer: spans, tracer, exporter, EXPLAIN."""

import json

import numpy as np
import pytest

from repro.core.database import BlendHouse, ExplainResult
from repro.observe.export import MetricsExporter
from repro.observe.profile import PROFILER, PhaseStat, Profiler, maybe_profile
from repro.observe.trace import Span, Tracer, maybe_span
from repro.simulate.metrics import MetricRegistry


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestSpan:
    def test_duration_measures_clock(self, clock, tracer):
        with tracer.span("op") as span:
            clock.advance(0.5)
        assert span.duration == pytest.approx(0.5)
        assert span.finished

    def test_open_span_duration_is_zero(self, tracer):
        span = tracer.start("op")
        assert span.duration == 0.0
        assert not span.finished

    def test_end_before_start_rejected(self):
        span = Span("op", start=5.0)
        with pytest.raises(ValueError):
            span.finish(1.0)

    def test_children_linked_both_ways(self, clock, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert child.parent is parent
        assert parent.children == [child]

    def test_sequential_children_sum_to_at_most_parent(self, clock, tracer):
        with tracer.span("parent") as parent:
            for cost in (0.1, 0.2, 0.3):
                with tracer.span("child"):
                    clock.advance(cost)
            clock.advance(0.05)  # parent-only work
        child_total = sum(c.duration for c in parent.children)
        assert child_total == pytest.approx(0.6)
        assert child_total <= parent.duration
        assert parent.duration == pytest.approx(0.65)

    def test_find_and_find_all(self, tracer):
        with tracer.span("root"):
            with tracer.span("scan"):
                pass
            with tracer.span("scan"):
                pass
        root = tracer.last_root()
        assert root.find("scan") is root.children[0]
        assert len(root.find_all("scan")) == 2
        assert root.find("ghost") is None

    def test_to_dict_round_trips_through_json(self, clock, tracer):
        with tracer.span("root", table="t"):
            clock.advance(0.1)
        d = json.loads(json.dumps(tracer.last_root().to_dict()))
        assert d["name"] == "root"
        assert d["tags"] == {"table": "t"}
        assert d["duration"] == pytest.approx(0.1)

    def test_render_tree(self, clock, tracer):
        with tracer.span("root"):
            with tracer.span("child", tier="memory"):
                clock.advance(0.001)
        text = tracer.last_root().render()
        assert "root" in text
        assert "  child  1.000 sim-ms  [tier=memory]" in text


class TestTracer:
    def test_current_tracks_stack(self, tracer):
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_finish_closes_abandoned_descendants(self, clock, tracer):
        outer = tracer.start("outer")
        tracer.start("inner")
        clock.advance(0.1)
        tracer.finish(outer)
        assert outer.finished
        assert outer.children[0].finished

    def test_finish_unknown_span_rejected(self, tracer):
        foreign = Span("foreign", start=0.0)
        with pytest.raises(ValueError):
            tracer.finish(foreign)

    def test_annotate_tags_innermost(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.annotate("tier", "disk")
        assert inner.tags["tier"] == "disk"
        assert "tier" not in outer.tags

    def test_annotate_without_open_span_is_noop(self, tracer):
        tracer.annotate("tier", "disk")  # must not raise

    def test_roots_bounded(self, clock):
        tracer = Tracer(clock, max_roots=3)
        for i in range(5):
            with tracer.span(f"q{i}"):
                pass
        assert [root.name for root in tracer.roots] == ["q2", "q3", "q4"]

    def test_reset(self, tracer):
        with tracer.span("q"):
            pass
        tracer.reset()
        assert tracer.last_root() is None
        assert tracer.current is None

    def test_maybe_span_without_tracer_is_noop(self):
        with maybe_span(None, "op") as span:
            assert span is None

    def test_maybe_span_with_tracer_opens_span(self, tracer):
        with maybe_span(tracer, "op", k=1) as span:
            assert span is tracer.current
        assert tracer.last_root().tags == {"k": 1}


class TestMetricsExporter:
    def test_counter_reads_public_dict(self):
        registry = MetricRegistry()
        registry.incr("hits", 7)
        exporter = MetricsExporter(registry)
        assert exporter.counter("hits") == 7
        assert exporter.counter("absent") == 0

    def test_as_dict_includes_last_trace(self, clock):
        registry = MetricRegistry()
        tracer = Tracer(clock)
        exporter = MetricsExporter(registry, tracer)
        assert exporter.as_dict()["last_trace"] is None
        with tracer.span("query"):
            clock.advance(0.2)
        trace = exporter.as_dict()["last_trace"]
        assert trace["name"] == "query"
        assert trace["duration"] == pytest.approx(0.2)

    def test_as_json_is_valid(self, clock):
        registry = MetricRegistry()
        registry.incr("a")
        registry.record_latency("q", 0.1)
        exporter = MetricsExporter(registry, Tracer(clock))
        parsed = json.loads(exporter.as_json(indent=2))
        assert parsed["counters"]["a"] == 1

    def test_render_delegates_to_registry(self):
        registry = MetricRegistry()
        registry.incr("a")
        assert MetricsExporter(registry).render() == registry.render()


DIM = 8


def _seeded_db(rows=300):
    db = BlendHouse()
    db.execute(
        f"CREATE TABLE t (id UInt64, views UInt64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE HNSW('DIM={DIM}'))"
    )
    rng = np.random.default_rng(7)
    db.insert_rows(
        "t",
        [
            {
                "id": i,
                "views": int(rng.integers(0, 1000)),
                "embedding": rng.normal(size=DIM).astype(np.float32),
            }
            for i in range(rows)
        ],
    )
    return db


def _hybrid_sql(prefix=""):
    vec = "[" + ", ".join(["0.1"] * DIM) + "]"
    return (
        f"{prefix}SELECT id, dist FROM t WHERE views < 800 "
        f"ORDER BY L2Distance(embedding, {vec}) AS dist LIMIT 5"
    )


class TestExplainAnalyze:
    def test_span_tree_covers_query_stages(self):
        db = _seeded_db()
        result = db.execute(_hybrid_sql("EXPLAIN ANALYZE "))
        assert isinstance(result, ExplainResult)
        root = result.trace
        for stage in ("parse", "plan", "prune", "execute", "segment_scan"):
            assert root.find(stage) is not None, stage
        scan = root.find("segment_scan")
        assert scan.find("index_resolve").tags["tier"] == "built"
        child_total = sum(child.duration for child in root.children)
        assert child_total <= root.duration + 1e-12

    def test_plan_cache_attribution(self):
        db = _seeded_db()
        first = db.execute(_hybrid_sql("EXPLAIN ANALYZE "))
        second = db.execute(_hybrid_sql("EXPLAIN ANALYZE "))
        assert first.trace.find("plan").tags["plan_cache"] == "miss"
        assert second.trace.find("plan").tags["plan_cache"] == "hit"

    def test_explain_shares_plan_cache_with_plain_query(self):
        # EXPLAIN-prefixed and plain statements must normalize to the
        # same plan-cache signature.
        db = _seeded_db()
        db.execute(_hybrid_sql())
        result = db.execute(_hybrid_sql("EXPLAIN ANALYZE "))
        assert result.trace.find("plan").tags["plan_cache"] == "hit"

    def test_render_contains_rows_and_time(self):
        db = _seeded_db()
        text = db.execute(_hybrid_sql("EXPLAIN ANALYZE ")).render()
        assert "EXPLAIN ANALYZE" in text
        assert "strategy=" in text
        assert "sim-ms" in text
        assert "(5 rows" in text

    def test_plain_explain_does_not_execute(self):
        db = _seeded_db()
        before = db.export_metrics().counter("delete_bitmap.filters")
        result = db.execute(_hybrid_sql("EXPLAIN "))
        assert result.result is None
        assert result.trace.find("execute") is None
        assert db.export_metrics().counter("delete_bitmap.filters") == before

    def test_exporter_counts_plan_cache_through_public_surface(self):
        db = _seeded_db()
        db.execute(_hybrid_sql())
        db.execute(_hybrid_sql())
        exporter = db.export_metrics()
        assert exporter.counter("plan_cache.misses") == 1
        assert exporter.counter("plan_cache.hits") == 1
        assert exporter.as_dict()["last_trace"]["name"] == "query"
        assert "plan_cache_hits_total 1" in exporter.render()


class TestExporterAccessors:
    def test_counter_avoids_full_snapshot(self):
        registry = MetricRegistry()
        registry.incr("hits", 3)
        exporter = MetricsExporter(registry)
        assert exporter.counter("hits") == 3

    def test_gauge_prefers_sampled_values(self):
        registry = MetricRegistry()
        registry.gauge("depth", 9)       # counter-style gauge
        registry.sample("depth", 4.0)    # sampled gauge wins
        exporter = MetricsExporter(registry)
        assert exporter.gauge("depth") == pytest.approx(4.0)

    def test_gauge_falls_back_to_counters_then_default(self):
        registry = MetricRegistry()
        registry.gauge("manifest_id", 12)
        exporter = MetricsExporter(registry)
        assert exporter.gauge("manifest_id") == 12
        assert exporter.gauge("absent") == 0.0
        assert exporter.gauge("absent", default=-1.0) == -1.0


class TestObserveSettings:
    def test_set_trace_max_roots_applies_live(self):
        db = _seeded_db(rows=40)
        db.execute("SET trace_max_roots = 2")
        assert db.tracer.max_roots == 2
        for _ in range(3):
            db.execute(_hybrid_sql())
        assert len(db.tracer.roots) <= 2
        # Ingest + three queries produced more than two roots: the
        # overflow is visible as a counter, not silently vanished.
        assert db.tracer.roots_dropped > 0
        assert db.export_metrics().counter("trace.roots_dropped") == (
            db.tracer.roots_dropped
        )

    def test_set_slowlog_knobs_apply_live(self):
        db = _seeded_db(rows=40)
        db.execute("SET slowlog_threshold_ms = 0.25")
        db.execute("SET slowlog_sample_every = 7")
        assert db.slowlog.threshold_s == pytest.approx(2.5e-4)
        assert db.slowlog.sample_every == 7


class TestShowSlowQueries:
    def test_slow_query_is_captured_and_shown(self):
        db = _seeded_db(rows=60)
        db.execute("SET slowlog_threshold_ms = 0")  # record everything
        db.execute(_hybrid_sql())
        report = db.execute("SHOW SLOW QUERIES")
        assert report.records, "threshold 0 must capture the query"
        record = report.records[0]
        assert record.reason == "slow"
        assert record.sql == _hybrid_sql()
        assert record.manifest_id is not None
        assert record.plan["strategy"]
        text = report.render()
        assert "slow queries:" in text and "SELECT id, dist" in text

    def test_limit_caps_rendered_records(self):
        db = _seeded_db(rows=60)
        db.execute("SET slowlog_threshold_ms = 0")
        for _ in range(4):
            db.execute(_hybrid_sql())
        limited = db.execute("SHOW SLOW QUERIES LIMIT 2")
        assert len(limited.records) == 2
        assert limited.total_recorded >= 4
        # The newest records survive the limit.
        full = db.execute("SHOW SLOW QUERIES")
        assert [r.query_id for r in limited.records] == [
            r.query_id for r in full.records[-2:]
        ]

    def test_empty_log_renders_placeholder(self):
        db = _seeded_db(rows=40)
        report = db.execute("SHOW SLOW QUERIES")
        assert report.records == []
        assert "0 shown" in report.render() or "no slow queries" in report.render()

    def test_malformed_show_raises(self):
        from repro.errors import ParseError
        db = _seeded_db(rows=40)
        with pytest.raises(ParseError):
            db.execute("SHOW FAST QUERIES")


class TestProfiler:
    def test_phase_stat_overhead_factor(self):
        stat = PhaseStat(real_s=0.2, sim_s=0.1, calls=3)
        assert stat.as_dict()["overhead_x"] == pytest.approx(2.0)
        assert PhaseStat(real_s=0.2).as_dict()["overhead_x"] is None

    def test_phase_context_accumulates_real_and_sim(self, clock):
        profiler = Profiler(enabled=True)
        with profiler.phase("scan", clock):
            clock.advance(0.5)
        with profiler.phase("scan", clock):
            clock.advance(0.25)
        stat = profiler.phases()["scan"]
        assert stat.calls == 2
        assert stat.sim_s == pytest.approx(0.75)
        assert stat.real_s > 0

    def test_report_totals_and_render(self, clock):
        profiler = Profiler(enabled=True)
        with profiler.phase("plan", clock):
            clock.advance(0.1)
        profiler.add("pure_python", real_s=0.01)
        report = profiler.report()
        assert set(report["phases"]) == {"plan", "pure_python"}
        assert report["total_sim_s"] == pytest.approx(0.1)
        assert report["phases"]["pure_python"]["overhead_x"] is None
        assert "plan" in profiler.render()
        profiler.reset()
        assert profiler.render() == "profile: (no phases recorded)"

    def test_maybe_profile_is_shared_noop_when_disabled(self):
        was_enabled = PROFILER.enabled
        PROFILER.disable()
        try:
            first = maybe_profile("anything")
            second = maybe_profile("other")
            assert first is second  # the shared null context
            with first:
                pass
        finally:
            PROFILER.enabled = was_enabled

    def test_engine_hot_paths_record_phases_when_enabled(self):
        db = _seeded_db(rows=60)
        PROFILER.reset()
        PROFILER.enable()
        try:
            db.execute(_hybrid_sql())
        finally:
            PROFILER.disable()
        phases = PROFILER.phases()
        assert "select.plan" in phases and "select.execute" in phases
        assert phases["select.execute"].sim_s > 0
        PROFILER.reset()
