"""Tests for the cache tiers."""

import pytest

from repro.errors import ObjectNotFoundError
from repro.storage.cache import HierarchicalIndexCache, LRUCache, SplitIndexCache
from repro.storage.localdisk import LocalDisk


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(100)
        cache.put("a", b"xxx")
        assert cache.get("a") == b"xxx"

    def test_miss_returns_none_and_counts(self):
        cache = LRUCache(100)
        assert cache.get("ghost") is None
        assert cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(10)
        cache.put("a", b"xxxx")
        cache.put("b", b"xxxx")
        cache.get("a")
        cache.put("c", b"xxxx")  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_oversize_refused(self):
        cache = LRUCache(4)
        assert not cache.put("big", b"xxxxx")

    def test_oversize_put_evicts_stale_entry(self):
        # Regression: replacing an entry with an oversize value must not
        # leave the stale predecessor serving phantom hits.
        cache = LRUCache(10)
        cache.put("idx", b"old")
        assert not cache.put("idx", b"x" * 20)
        assert "idx" not in cache
        assert cache.get("idx") is None
        assert cache.used_bytes == 0
        assert cache.evictions == 1

    def test_oversize_put_leaves_other_entries_alone(self):
        cache = LRUCache(10)
        cache.put("keep", b"abcd")
        assert not cache.put("big", b"x" * 20)
        assert "keep" in cache
        assert cache.used_bytes == 4
        assert cache.evictions == 0

    def test_overwrite_updates_usage(self):
        cache = LRUCache(100)
        cache.put("a", b"x" * 50)
        cache.put("a", b"x" * 10)
        assert cache.used_bytes == 10

    def test_explicit_evict(self):
        cache = LRUCache(100)
        cache.put("a", b"x")
        assert cache.evict("a")
        assert not cache.evict("a")

    def test_custom_size_fn(self):
        cache = LRUCache(10, size_of=lambda value: 5)
        cache.put("a", object())
        cache.put("b", object())
        cache.put("c", object())
        assert len(cache) == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSplitIndexCache:
    def test_spaces_are_independent(self):
        cache = SplitIndexCache(50, 50)
        cache.put_meta("k", b"m" * 40)
        cache.put_data("k", b"d" * 40)
        assert cache.get_meta("k") == b"m" * 40
        assert cache.get_data("k") == b"d" * 40

    def test_data_churn_does_not_evict_meta(self):
        cache = SplitIndexCache(100, 50)
        cache.put_meta("hot", b"m" * 10)
        for i in range(20):
            cache.put_data(f"d{i}", b"d" * 40)
        assert cache.get_meta("hot") is not None

    def test_clear(self):
        cache = SplitIndexCache(50, 50)
        cache.put_meta("a", b"x")
        cache.put_data("b", b"y")
        cache.clear()
        assert cache.get_meta("a") is None
        assert cache.get_data("b") is None

    def test_oversize_data_put_evicts_stale_entry(self):
        # The LRUCache oversize fix must propagate through put_data:
        # a rebuilt index that no longer fits evicts its predecessor.
        cache = SplitIndexCache(50, 10)
        assert cache.put_data("idx", b"old")
        assert not cache.put_data("idx", b"x" * 20)
        assert cache.get_data("idx") is None


class _FakeIndex:
    """Deserialized stand-in exposing memory_bytes like a real index."""

    def __init__(self, payload: bytes) -> None:
        self.payload = payload

    def memory_bytes(self) -> int:
        return len(self.payload)


@pytest.fixture
def hierarchy(clock, cost, metrics, store):
    memory = SplitIndexCache(1 << 20, 1 << 20)
    disk = LocalDisk(clock, 1 << 20, cost, metrics)
    cache = HierarchicalIndexCache(
        clock, memory, disk, store, deserialize=_FakeIndex,
        cost_model=cost, metrics=metrics,
    )
    return cache, disk, store


class TestHierarchicalCache:
    def test_remote_then_disk_then_memory(self, hierarchy, metrics):
        cache, disk, store = hierarchy
        store.put("idx", b"payload")
        _, tier1 = cache.get("idx")
        assert tier1 == "remote"
        cache.clear_memory()
        _, tier2 = cache.get("idx")
        assert tier2 == "disk"
        _, tier3 = cache.get("idx")
        assert tier3 == "memory"

    def test_missing_everywhere_raises(self, hierarchy):
        cache, _, _ = hierarchy
        with pytest.raises(ObjectNotFoundError):
            cache.get("ghost")

    def test_preload_populates_memory(self, hierarchy):
        cache, _, store = hierarchy
        store.put("idx", b"payload")
        assert cache.preload("idx")
        assert cache.contains_in_memory("idx")

    def test_preload_missing_returns_false(self, hierarchy):
        cache, _, _ = hierarchy
        assert not cache.preload("ghost")

    def test_invalidate_drops_all_tiers(self, hierarchy):
        cache, disk, store = hierarchy
        store.put("idx", b"payload")
        cache.get("idx")
        cache.invalidate("idx")
        assert not cache.contains_in_memory("idx")
        assert "idx" not in disk

    def test_tier_costs_ordered(self, hierarchy, clock, cost):
        cache, _, store = hierarchy
        store.put("idx", b"p" * 10_000)
        t0 = clock.now
        cache.get("idx")
        remote_cost = clock.now - t0
        cache.clear_memory()
        t1 = clock.now
        cache.get("idx")
        disk_cost = clock.now - t1
        t2 = clock.now
        cache.get("idx")
        memory_cost = clock.now - t2
        assert memory_cost < disk_cost < remote_cost

    def test_backfill_order_remote_fills_disk_then_memory(self, hierarchy):
        # A remote miss must back-fill *both* lower tiers so the next
        # lookups resolve progressively closer: remote → memory, and
        # after a RAM wipe, disk → memory again.
        cache, disk, store = hierarchy
        store.put("idx", b"payload")
        _, tier = cache.get("idx")
        assert tier == "remote"
        assert "idx" in disk
        assert cache.contains_in_memory("idx")
        cache.clear_memory()
        _, tier = cache.get("idx")
        assert tier == "disk"
        assert cache.contains_in_memory("idx")

    def test_tier_latencies_strictly_increase_in_exported_metrics(
        self, hierarchy, metrics
    ):
        # Same ordering as test_tier_costs_ordered, but observed through
        # the exported per-tier latency metrics rather than the clock.
        cache, _, store = hierarchy
        store.put("idx", b"p" * 10_000)
        cache.get("idx")        # remote
        cache.clear_memory()
        cache.get("idx")        # disk
        cache.get("idx")        # memory
        latencies = metrics.as_dict()["latencies"]
        memory = latencies["index_cache.tier.memory"]["mean"]
        disk = latencies["index_cache.tier.disk"]["mean"]
        remote = latencies["index_cache.tier.remote"]["mean"]
        assert memory < disk < remote
