"""Tests for per-segment execution and the merge/projection pipeline."""

import numpy as np
import pytest

from repro.catalog.schema import TableSchema
from repro.executor.columnio import ColumnReader
from repro.executor.pipeline import (
    ExecContext,
    execute_plan_on_segments,
    referenced_columns,
)
from repro.planner.cost import CostModelParams
from repro.planner.logical import bind_select
from repro.planner.optimizer import ExecutionStrategy, Optimizer, OptimizerConfig, PhysicalPlan
from repro.planner.rules import apply_rules
from repro.simulate.costmodel import DeviceCostModel
from repro.sqlparser.ast_nodes import ColumnDef
from repro.sqlparser.parser import parse_statement
from repro.storage.deletebitmap import DeleteBitmap
from repro.storage.segment import Segment
from repro.vindex.flat import FlatIndex
from repro.vindex.registry import IndexSpec

DIM = 8


@pytest.fixture
def schema():
    return TableSchema.from_ddl(
        "t",
        [
            ColumnDef("id", "UInt64"),
            ColumnDef("views", "UInt64"),
            ColumnDef("embedding", "Array", ("Float32",)),
        ],
        index_spec=IndexSpec(index_type="FLAT", dim=DIM, column="embedding"),
    )


@pytest.fixture
def world(clock, cost, schema):
    """Two segments with FLAT indexes plus an exec context."""
    rng = np.random.default_rng(0)
    segments, indexes, bitmaps = [], {}, {}
    for part in range(2):
        n = 100
        vectors = rng.normal(size=(n, DIM)).astype(np.float32)
        segment = Segment.from_columns(
            f"t/seg-{part}", "t",
            {
                "id": np.arange(part * n, (part + 1) * n, dtype=np.uint64),
                "views": rng.integers(0, 1000, size=n).astype(np.uint64),
            },
            vectors,
        )
        segment.meta.index_type = "FLAT"
        index = FlatIndex(dim=DIM)
        index.add_with_ids(vectors, np.arange(n))
        segments.append(segment)
        indexes[segment.segment_id] = index
        bitmaps[segment.segment_id] = DeleteBitmap(n)
    ctx = ExecContext(
        clock=clock,
        cost=cost,
        params=CostModelParams.from_device_model(cost, DIM),
        reader=ColumnReader(clock, cost),
        resolve_index=lambda seg: indexes[seg.segment_id],
    )
    return segments, bitmaps, ctx


def plan_for(sql, schema, strategy=None):
    logical = apply_rules(bind_select(parse_statement(sql), schema))
    if strategy is not None:
        return PhysicalPlan(logical=logical, strategy=strategy)
    params = CostModelParams.from_device_model(DeviceCostModel(), DIM)
    from repro.catalog.statistics import TableStatistics

    stats = TableStatistics()
    stats.row_count = 200
    return Optimizer(params, OptimizerConfig()).choose(logical, stats, schema.index_spec)


VEC = "[" + ",".join(["0.1"] * DIM) + "]"


def global_truth(segments, query, k, predicate=None):
    rows = []
    for segment in segments:
        ids = segment.scalar_column("id")
        views = segment.scalar_column("views")
        for offset in range(segment.row_count):
            if predicate is not None and not predicate(views[offset]):
                continue
            dist = float(np.linalg.norm(segment.vectors()[offset] - np.asarray(query)))
            rows.append((dist, int(ids[offset])))
    rows.sort()
    return [row_id for _, row_id in rows[:k]]


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy",
        [
            ExecutionStrategy.BRUTE_FORCE,
            ExecutionStrategy.PRE_FILTER,
            ExecutionStrategy.POST_FILTER,
        ],
    )
    def test_all_strategies_agree_on_flat_index(self, world, schema, strategy):
        """With an exact index, every strategy returns the same top-k."""
        segments, bitmaps, ctx = world
        sql = (
            f"SELECT id, dist FROM t WHERE views < 800 "
            f"ORDER BY L2Distance(embedding, {VEC}) AS dist LIMIT 10"
        )
        plan = plan_for(sql, schema, strategy)
        result = execute_plan_on_segments(plan, segments, bitmaps, ctx)
        query = [0.1] * DIM
        expected = global_truth(segments, query, 10, predicate=lambda v: v < 800)
        assert [row[0] for row in result.rows] == expected

    def test_ann_only(self, world, schema):
        segments, bitmaps, ctx = world
        sql = f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 7"
        plan = plan_for(sql, schema)
        result = execute_plan_on_segments(plan, segments, bitmaps, ctx)
        assert [row[0] for row in result.rows] == global_truth(
            segments, [0.1] * DIM, 7
        )

    def test_scalar_only(self, world, schema):
        segments, bitmaps, ctx = world
        plan = plan_for("SELECT id FROM t WHERE views < 100 LIMIT 1000", schema)
        result = execute_plan_on_segments(plan, segments, bitmaps, ctx)
        for segment in segments:
            views = segment.scalar_column("views")
            ids = segment.scalar_column("id")
            expected_ids = {int(ids[i]) for i in range(segment.row_count) if views[i] < 100}
            got = {row[0] for row in result.rows}
            assert expected_ids <= got

    def test_range_strategy(self, world, schema):
        segments, bitmaps, ctx = world
        plan = plan_for(
            f"SELECT id FROM t WHERE L2Distance(embedding, {VEC}) < 2.0", schema
        )
        assert plan.strategy is ExecutionStrategy.RANGE
        result = execute_plan_on_segments(plan, segments, bitmaps, ctx)
        for segment in segments:
            ids = segment.scalar_column("id")
            for offset in range(segment.row_count):
                dist = float(np.linalg.norm(segment.vectors()[offset] - 0.1))
                inside = dist < 2.0
                present = int(ids[offset]) in {row[0] for row in result.rows}
                assert inside == present


class TestDeletes:
    def test_deleted_rows_invisible_everywhere(self, world, schema):
        segments, bitmaps, ctx = world
        # Find the global top-1 and delete it.
        top = global_truth(segments, [0.1] * DIM, 1)[0]
        for segment in segments:
            ids = segment.scalar_column("id")
            hit = np.flatnonzero(ids == top)
            if hit.size:
                bitmaps[segment.segment_id].mark_deleted(hit.tolist())
        sql = f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 5"
        plan = plan_for(sql, schema)
        result = execute_plan_on_segments(plan, segments, bitmaps, ctx)
        assert top not in [row[0] for row in result.rows]


class TestProjectionAndMerge:
    def test_distance_column_and_alias(self, world, schema):
        segments, bitmaps, ctx = world
        sql = f"SELECT id, dist FROM t ORDER BY L2Distance(embedding, {VEC}) AS dist LIMIT 3"
        result = execute_plan_on_segments(plan_for(sql, schema), segments, bitmaps, ctx)
        assert result.columns == ["id", "dist"]
        distances = [row[1] for row in result.rows]
        assert distances == sorted(distances)

    def test_offset_slicing(self, world, schema):
        segments, bitmaps, ctx = world
        base = f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 10"
        full = execute_plan_on_segments(plan_for(base, schema), segments, bitmaps, ctx)
        shifted_sql = (
            f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 5 OFFSET 5"
        )
        shifted = execute_plan_on_segments(
            plan_for(shifted_sql, schema), segments, bitmaps, ctx
        )
        assert [r[0] for r in shifted.rows] == [r[0] for r in full.rows[5:10]]

    def test_vector_column_projection(self, world, schema):
        segments, bitmaps, ctx = world
        sql = f"SELECT id, embedding FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 2"
        result = execute_plan_on_segments(plan_for(sql, schema), segments, bitmaps, ctx)
        assert isinstance(result.rows[0][1], np.ndarray)

    def test_query_result_column_accessor(self, world, schema):
        segments, bitmaps, ctx = world
        sql = f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 4"
        result = execute_plan_on_segments(plan_for(sql, schema), segments, bitmaps, ctx)
        assert len(result.column("id")) == 4
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            result.column("ghost")

    def test_simulated_time_charged(self, world, schema):
        segments, bitmaps, ctx = world
        sql = f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 4"
        result = execute_plan_on_segments(plan_for(sql, schema), segments, bitmaps, ctx)
        assert result.simulated_seconds > 0
        assert result.segments_scanned == 2


class TestBruteForcePath:
    def test_missing_index_falls_back(self, world, schema, metrics):
        segments, bitmaps, _ = world
        from repro.simulate.clock import SimulatedClock

        fresh_clock = SimulatedClock()
        cost = DeviceCostModel()
        ctx = ExecContext(
            clock=fresh_clock,
            cost=cost,
            params=CostModelParams.from_device_model(cost, DIM),
            reader=ColumnReader(fresh_clock, cost),
            resolve_index=lambda seg: None,
            metrics=metrics,
        )
        sql = f"SELECT id FROM t ORDER BY L2Distance(embedding, {VEC}) LIMIT 5"
        result = execute_plan_on_segments(plan_for(sql, schema), segments, bitmaps, ctx)
        assert [row[0] for row in result.rows] == global_truth(segments, [0.1] * DIM, 5)
        assert metrics.count("annscan.brute_force_rows") == 200


class TestHelpers:
    def test_referenced_columns(self):
        where = parse_statement(
            "SELECT id FROM t WHERE a < 5 AND b IN (1,2) OR NOT c BETWEEN d AND 9"
        ).where
        assert referenced_columns(where) == {"a", "b", "c", "d"}

    def test_referenced_columns_none(self):
        assert referenced_columns(None) == set()
