"""SLO burn-rate monitor: windows, gating, transitions, serving e2e.

The end-to-end class is the ISSUE acceptance test: an identical
serving workload runs twice on the virtual loop — once healthy, once
with an injected ``time_scale`` derating (the ``SERVING_SLOWDOWN``
lever) — and the derated run must trip the latency SLO's fast burn
deterministically while the slow-query log captures the offending
queries' full flight records.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.database import BlendHouse
from repro.observe.events import EventLog
from repro.observe.slo import SLObjective, SLOMonitor
from repro.serving import (
    Lane,
    QueryRequest,
    ServingConfig,
    ServingFrontend,
    run_virtual,
)
from repro.simulate.metrics import MetricRegistry
from tests.helpers import vector_sql


def reply(status="ok", latency_s=0.0):
    return SimpleNamespace(status=status, latency_s=latency_s)


class TestSLObjective:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="availability", target=0.9)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_target_outside_open_interval(self, target):
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="latency", target=target)

    def test_rejects_fast_window_not_shorter_than_slow(self):
        with pytest.raises(ValueError):
            SLObjective(
                name="x", kind="latency", target=0.9,
                fast_window_s=60.0, slow_window_s=60.0,
            )

    def test_error_budget(self):
        objective = SLObjective(name="x", kind="latency", target=0.99)
        assert objective.error_budget == pytest.approx(0.01)


class TestSLOMonitor:
    def make(self, clock, **kwargs):
        monitor = SLOMonitor(clock, metrics=kwargs.pop("metrics", None))
        defaults = dict(
            name="latency", kind="latency", target=0.9, threshold_s=0.1,
            fast_window_s=1.0, slow_window_s=10.0,
        )
        defaults.update(kwargs)
        monitor.add_objective(SLObjective(**defaults))
        return monitor

    def test_duplicate_objective_rejected(self, clock):
        monitor = self.make(clock)
        with pytest.raises(ValueError):
            monitor.add_objective(
                SLObjective(name="latency", kind="latency", target=0.5)
            )

    def test_record_unknown_objective_raises(self, clock):
        with pytest.raises(KeyError):
            self.make(clock).record("nope", bad=True)

    def test_burn_rate_scales_with_error_budget(self, clock):
        monitor = self.make(clock)  # budget 0.1
        for i in range(10):
            monitor.record("latency", bad=(i < 2), timestamp=0.0)
        status = monitor.evaluate()["latency"]
        # 20% bad against a 10% budget burns at 2x.
        assert status["fast_burn"] == pytest.approx(2.0)
        assert status["slow_burn"] == pytest.approx(2.0)

    def test_windows_evict_on_simulated_time(self, clock):
        monitor = self.make(clock)
        monitor.record("latency", bad=True, timestamp=0.0)
        clock.advance(0.5)
        assert monitor.evaluate()["latency"]["fast_total"] == 1
        clock.advance(1.0)  # past the 1s fast window, inside the slow
        status = monitor.evaluate()["latency"]
        assert status["fast_total"] == 0 and status["slow_total"] == 1
        clock.advance(10.0)  # past the slow window too
        status = monitor.evaluate()["latency"]
        assert status["slow_total"] == 0
        assert status["fast_burn"] == 0.0 and status["slow_burn"] == 0.0

    def test_alert_requires_both_windows_burning(self, clock):
        monitor = self.make(clock)  # budget 0.1, alert burn 4.0
        # 9s of healthy traffic fills the slow window with good events.
        for i in range(20):
            monitor.record("latency", bad=False, timestamp=i * 0.45)
        # A sharp 0.5s burst of failures saturates the fast window.
        for i in range(5):
            monitor.record("latency", bad=True, timestamp=9.2 + i * 0.1)
        clock.advance(9.6)
        status = monitor.evaluate()["latency"]
        assert status["fast_burn"] >= 4.0
        assert status["slow_burn"] < 4.0
        assert not status["alerting"], "a brief blip must not page"
        # The failure sustains: the slow window catches up and it pages.
        for i in range(15):
            monitor.record("latency", bad=True, timestamp=9.7 + i * 0.1)
        clock.advance(11.1 - clock.now)
        status = monitor.evaluate()["latency"]
        assert status["fast_burn"] >= 4.0 and status["slow_burn"] >= 4.0
        assert status["alerting"]

    def test_transitions_emit_events_and_publish_gauges(self, clock):
        registry = MetricRegistry()
        registry.events = EventLog(clock)
        monitor = self.make(clock, metrics=registry)
        for _ in range(10):
            monitor.record("latency", bad=True, timestamp=clock.now)
        status = monitor.evaluate()["latency"]
        assert status["alerting"] and status["transitions"] == 1
        firing = registry.events.last("slo.alert")
        assert firing.fields["state"] == "firing"
        assert firing.fields["objective"] == "latency"
        assert registry.count("slo.latency.alerting") == 1
        assert registry.count("slo.latency.fast_burn") >= 4

        # Recovery: bad events age out of both windows -> cleared.
        clock.advance(20.0)
        status = monitor.evaluate()["latency"]
        assert not status["alerting"] and status["transitions"] == 2
        assert registry.events.last("slo.alert").fields["state"] == "cleared"
        assert registry.count("slo.latency.alerting") == 0
        # Steady state: no transition, no new event.
        total = registry.events.count("slo.alert")
        monitor.evaluate()
        assert registry.events.count("slo.alert") == total

    def test_latency_kind_ignores_failed_replies_and_other_lanes(self, clock):
        monitor = self.make(clock, lane="interactive")
        monitor.observe_reply("interactive", reply("rejected_admission"))
        monitor.observe_reply("batch", reply("ok", latency_s=9.0))
        assert monitor.evaluate()["latency"]["slow_total"] == 0
        monitor.observe_reply("interactive", reply("ok", latency_s=9.0))
        monitor.observe_reply("interactive", reply("ok", latency_s=0.01))
        status = monitor.evaluate()["latency"]
        assert status["slow_total"] == 2
        assert status["slow_burn"] == pytest.approx(5.0)  # 50% bad / 10%

    def test_rejection_kind_counts_all_terminal_replies(self, clock):
        monitor = SLOMonitor(clock)
        monitor.add_objective(SLObjective(
            name="rejections", kind="rejection", target=0.5,
        ))
        monitor.observe_reply("interactive", reply("ok", latency_s=1.0))
        monitor.observe_reply("interactive", reply("rejected_admission"))
        monitor.observe_reply("interactive", reply("rejected_quota"))
        monitor.observe_reply("interactive", reply("timeout"))
        status = monitor.evaluate()["rejections"]
        assert status["slow_total"] == 4
        # 2 of 4 rejected against a 50% budget: burn exactly 1.0.
        assert status["slow_burn"] == pytest.approx(1.0)
        assert not monitor.any_alerting()

    def test_alerting_accessor_and_as_dict(self, clock):
        monitor = self.make(clock)
        assert monitor.alerting("latency") is False
        with pytest.raises(KeyError):
            monitor.alerting("missing")
        snapshot = monitor.as_dict()["latency"]
        assert snapshot["threshold_s"] == pytest.approx(0.1)
        assert snapshot["fast_window_s"] == pytest.approx(1.0)


DIM = 8


class TestServingSLOEndToEnd:
    """Injected SERVING_SLOWDOWN (time_scale) trips the fast burn."""

    N_QUERIES = 24

    def make_db(self):
        rng = np.random.default_rng(11)
        db = BlendHouse()
        db.execute(
            "CREATE TABLE t (id UInt64, embedding Array(Float32), "
            f"INDEX ann embedding TYPE FLAT('DIM={DIM}'))"
        )
        db.table("t").writer.config.max_segment_rows = 30
        db.insert_rows(
            "t",
            [
                {"id": i, "embedding": rng.normal(size=DIM).astype(np.float32)}
                for i in range(90)
            ],
        )
        return db

    def sqls(self):
        return [
            f"SELECT id, dist FROM t ORDER BY L2Distance(embedding, "
            f"{vector_sql(np.random.default_rng(s).normal(size=DIM).astype(np.float32))}"
            f") AS dist LIMIT 5"
            for s in range(self.N_QUERIES)
        ]

    def run_workload(self, time_scale, threshold_s):
        db = self.make_db()
        frontend = ServingFrontend(db, ServingConfig(time_scale=time_scale))
        slo = SLOMonitor(db.clock, metrics=db.metrics)
        slo.add_objective(SLObjective(
            name="interactive_latency", kind="latency", target=0.9,
            threshold_s=threshold_s, lane="interactive",
        ))
        db.slowlog.threshold_s = float("inf")

        async def main():
            # Warmup outside the SLO: first queries pay one-off costs
            # (index loads, plan cache misses) in both configs, which
            # would otherwise dominate a threshold meant to separate
            # healthy steady state from a derated one.
            for sql in self.sqls()[:4]:
                await frontend.submit(QueryRequest(sql=sql, lane=Lane.INTERACTIVE))
            frontend.slo = slo
            db.slowlog.threshold_s = threshold_s
            replies = []
            for sql in self.sqls():
                replies.append(await frontend.submit(
                    QueryRequest(sql=sql, lane=Lane.INTERACTIVE)
                ))
            return replies

        replies = run_virtual(main())
        assert all(r.ok for r in replies)
        return db, slo, replies

    @pytest.fixture(scope="class")
    def threshold(self):
        """2x the healthy run's worst latency: generous for a healthy
        engine, hopeless under a >=4x derating."""
        db, _, replies = self.run_workload(1.0, threshold_s=float("inf"))
        return 2.0 * max(r.latency_s for r in replies)

    def test_healthy_run_holds_clear(self, threshold):
        db, slo, _ = self.run_workload(1.0, threshold)
        status = slo.evaluate()["interactive_latency"]
        assert status["fast_burn"] == 0.0
        assert not status["alerting"]
        assert not db.slowlog.records(), "no flights below the threshold"

    def test_slowdown_trips_fast_burn_deterministically(self, threshold):
        db, slo, replies = self.run_workload(8.0, threshold)
        status = slo.evaluate()["interactive_latency"]
        # Every query breaches 2x-healthy under an 8x derating: the
        # fast window burns the full budget (bad fraction 1.0 / 0.1).
        assert status["fast_burn"] >= 4.0
        assert status["alerting"], f"slowdown must page: {status}"
        firing = db.events.last("slo.alert")
        assert firing is not None and firing.fields["state"] == "firing"
        assert db.export_metrics().gauge(
            "slo.interactive_latency.alerting"
        ) == 1

    def test_slowlog_captures_offending_flights(self, threshold):
        db, _, replies = self.run_workload(8.0, threshold)
        records = db.slowlog.records()
        assert records, "derated queries must be captured"
        flight = records[-1]
        assert flight.reason == "slow"
        assert flight.lane == "interactive"
        assert flight.latency_s > threshold
        assert flight.queue_wait_s is not None
        assert flight.manifest_id is not None
        assert flight.plan and flight.plan["strategy"]
        assert flight.sql.startswith("SELECT id, dist FROM t")
        # Flight records ride the metrics export for scraping.
        exported = db.export_metrics().as_dict()["slow_queries"]
        assert exported and exported[-1]["manifest_id"] == flight.manifest_id
