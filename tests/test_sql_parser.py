"""Tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sqlparser.ast_nodes import (
    Between,
    BinaryOp,
    CreateTable,
    Delete,
    DropTable,
    FunctionCall,
    InList,
    Insert,
    Literal,
    Select,
    SetStatement,
    UnaryOp,
    Update,
    VectorLiteral,
)
from repro.sqlparser.parser import parse_statement


class TestCreateTable:
    def test_full_example_one(self):
        """The paper's Example 1 DDL parses completely."""
        statement = parse_statement(
            """
            CREATE TABLE images (
              id UInt64,
              label String,
              published_time DateTime,
              embedding Array(Float32),
              INDEX ann_idx embedding TYPE HNSW('DIM=960')
            )
            ORDER BY published_time
            PARTITION BY (toYYYYMMDD(published_time), label)
            CLUSTER BY embedding INTO 512 BUCKETS;
            """
        )
        assert isinstance(statement, CreateTable)
        assert statement.name == "images"
        assert [c.name for c in statement.columns] == [
            "id", "label", "published_time", "embedding",
        ]
        assert statement.columns[3].type_name == "Array"
        assert statement.indexes[0].index_type == "HNSW"
        assert statement.indexes[0].options == ("DIM=960",)
        assert statement.order_by == ["published_time"]
        assert len(statement.partition_by) == 2
        assert isinstance(statement.partition_by[0], FunctionCall)
        assert statement.cluster_by == "embedding"
        assert statement.cluster_buckets == 512

    def test_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (id UInt64, v Array(Float32))")
        assert statement.if_not_exists

    def test_missing_paren_raises(self):
        with pytest.raises(ParseError):
            parse_statement("CREATE TABLE t id UInt64")


class TestDropTable:
    def test_plain(self):
        statement = parse_statement("DROP TABLE t")
        assert isinstance(statement, DropTable)
        assert not statement.if_exists

    def test_if_exists(self):
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists


class TestInsert:
    def test_values_rows(self):
        statement = parse_statement(
            "INSERT INTO t (id, v) VALUES (1, [1.0, 2.0]), (2, [3.0, -4.0])"
        )
        assert isinstance(statement, Insert)
        assert statement.columns == ["id", "v"]
        assert statement.rows[0] == (1, [1.0, 2.0])
        assert statement.rows[1][1] == [3.0, -4.0]

    def test_negative_numbers(self):
        statement = parse_statement("INSERT INTO t (a) VALUES (-5)")
        assert statement.rows == [(-5,)]

    def test_csv_infile(self):
        statement = parse_statement("INSERT INTO images CSV INFILE 'img_data.csv'")
        assert statement.infile == "img_data.csv"

    def test_non_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("INSERT INTO t (a) VALUES (x + 1)")


class TestSelect:
    def test_hybrid_query_shape(self):
        statement = parse_statement(
            "SELECT id, dist, published_time FROM images "
            "WHERE label = 'animal' AND published_time >= 20241010 "
            "ORDER BY L2Distance(embedding, [1.0, 0.0]) AS dist LIMIT 100"
        )
        assert isinstance(statement, Select)
        assert statement.limit == 100
        order = statement.order_by[0]
        assert order.alias == "dist"
        assert isinstance(order.expression, FunctionCall)
        assert isinstance(order.expression.args[1], VectorLiteral)

    def test_star_projection(self):
        statement = parse_statement("SELECT * FROM t")
        assert statement.items[0].expression.name == "*"

    def test_limit_offset(self):
        statement = parse_statement("SELECT id FROM t LIMIT 10 OFFSET 5")
        assert statement.limit == 10
        assert statement.offset == 5

    def test_order_desc(self):
        statement = parse_statement("SELECT id FROM t ORDER BY id DESC LIMIT 1")
        assert not statement.order_by[0].ascending

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT id FROM t LIMIT 1 garbage")


class TestExpressions:
    def where(self, text):
        return parse_statement(f"SELECT id FROM t WHERE {text}").where

    def test_precedence_and_over_or(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_parentheses(self):
        expr = self.where("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "and"
        assert expr.left.op == "or"

    def test_not(self):
        expr = self.where("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 5")
        assert isinstance(expr, Between)
        assert not expr.negated

    def test_not_between(self):
        assert self.where("a NOT BETWEEN 1 AND 5").negated

    def test_in_list(self):
        expr = self.where("a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.items) == 3

    def test_like_and_regexp(self):
        like = self.where("name LIKE '%cat%'")
        assert like.op == "like"
        regexp = self.where("name REGEXP '^[0-9]'")
        assert regexp.op == "regexp"

    def test_is_null(self):
        expr = self.where("a IS NULL")
        assert expr.op == "is_null"
        neg = self.where("a IS NOT NULL")
        assert isinstance(neg, UnaryOp)

    def test_arithmetic_precedence(self):
        expr = self.where("a = 1 + 2 * 3")
        add = expr.right
        assert add.op == "+"
        assert add.right.op == "*"

    def test_unary_minus(self):
        expr = self.where("a > -5")
        assert isinstance(expr.right, UnaryOp)

    def test_boolean_literals(self):
        expr = self.where("TRUE")
        assert isinstance(expr, Literal) and expr.value is True

    def test_vector_literal_negative_components(self):
        statement = parse_statement(
            "SELECT id FROM t ORDER BY L2Distance(v, [-1.5, 2.0, -0.25]) LIMIT 1"
        )
        vec = statement.order_by[0].expression.args[1]
        assert vec.values == (-1.5, 2.0, -0.25)


class TestUpdateDeleteSet:
    def test_update(self):
        statement = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE id = 3")
        assert isinstance(statement, Update)
        assert statement.assignments[0][0] == "a"
        assert isinstance(statement.where, BinaryOp)

    def test_update_vector_assignment(self):
        statement = parse_statement("UPDATE t SET v = [1.0, 2.0] WHERE id = 1")
        assert isinstance(statement.assignments[0][1], VectorLiteral)

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE id < 5")
        assert isinstance(statement, Delete)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").where is None

    def test_set_numeric(self):
        statement = parse_statement("SET enable_cbo = 0")
        assert isinstance(statement, SetStatement)
        assert statement.value == 0

    def test_set_string(self):
        assert parse_statement("SET forced_strategy = 'post_filter'").value == "post_filter"

    def test_set_bareword(self):
        assert parse_statement("SET mode = auto").value == "auto"


class TestErrors:
    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("EXPLAIN SELECT 1")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse_statement("SELECT FROM")
        assert info.value.position >= 0
