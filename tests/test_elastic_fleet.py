"""Elastic fleet subsystem: routing, autoscaling, cold-cache masking.

Covers the fleet's membership protocol (masked joins wait out their
warm-up on the simulated clock before the router sees them), the
SLO-burn autoscaler's control loop, byte-identical query results while
the fleet scales mid-workload, staged serving routed across warehouses,
and the scheduler routing-directory keying that lets every member share
one directory without sharing mutable entries.
"""

import asyncio

import numpy as np
import pytest

from repro.cluster.scheduler import SegmentScheduler
from repro.core.database import BlendHouse
from repro.elastic import (
    AutoscalerPolicy,
    BackgroundPreloader,
    FleetAutoscaler,
    FleetBlendHouse,
    FleetConfig,
    FleetRouter,
)
from repro.elastic.router import route_key
from repro.errors import NoWorkersError
from repro.observe.slo import SLObjective, SLOMonitor
from repro.serving import Lane, QueryRequest, ServingConfig, ServingFrontend, run_virtual

from tests.helpers import vector_sql

DIM = 8
SEGMENT_ROWS = 60
ROWS = 360


def make_fleet_db(seed=0, warehouses=2, **cfg) -> FleetBlendHouse:
    db = FleetBlendHouse(
        fleet_config=FleetConfig(
            warehouses=warehouses, workers_per_warehouse=2, **cfg
        )
    )
    db.execute(
        "CREATE TABLE docs (id UInt64, label String, "
        f"embedding Array(Float32), INDEX ann embedding "
        f"TYPE FLAT('DIM={DIM}'))"
    )
    db.db.table("docs").writer.config.max_segment_rows = SEGMENT_ROWS
    rng = np.random.default_rng(seed)
    rows = [
        {
            "id": i,
            "label": ["a", "b"][i % 2],
            "embedding": rng.normal(size=DIM).astype(np.float32),
        }
        for i in range(ROWS)
    ]
    db.insert_rows("docs", rows)
    db._rows = rows
    return db


def ann_sql(db, k=6, row=17):
    query = db._rows[row]["embedding"]
    return (
        f"SELECT id, dist FROM docs ORDER BY "
        f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {k}"
    )


def top_ids(db, sql, tenant="default", lane="interactive"):
    return [row[0] for row in db.execute(sql, tenant=tenant, lane=lane).rows]


class TestFleetRouter:
    def test_routes_only_admitted(self):
        router = FleetRouter()
        with pytest.raises(NoWorkersError):
            router.route("t", "interactive")
        router.admit("vw-a")
        assert router.route("t", "interactive") == "vw-a"
        assert "vw-a" in router and len(router) == 1

    def test_sticky_per_tenant_lane(self):
        router = FleetRouter()
        for name in ("vw-a", "vw-b", "vw-c"):
            router.admit(name)
        first = router.route("tenant-1", "interactive")
        assert all(
            router.route("tenant-1", "interactive") == first for _ in range(10)
        )

    def test_distribution_spreads_tenants(self):
        router = FleetRouter()
        for name in ("vw-a", "vw-b", "vw-c", "vw-d"):
            router.admit(name)
        keys = [route_key(f"tenant-{i}", "interactive") for i in range(200)]
        counts = router.distribution(keys)
        assert set(counts) == {"vw-a", "vw-b", "vw-c", "vw-d"}
        assert max(counts.values()) < 2.5 * (200 / 4)

    def test_eviction_minimal_movement(self):
        router = FleetRouter()
        for name in ("vw-a", "vw-b", "vw-c", "vw-d"):
            router.admit(name)
        keys = [route_key(f"tenant-{i}", "interactive") for i in range(200)]
        before = router.assignment(keys)
        router.evict("vw-d")
        moved = router.moved_keys(keys, before)
        victims = sum(1 for owner in before.values() if owner == "vw-d")
        assert moved == victims


class TestFleetMembership:
    def test_initial_members_admitted(self):
        db = make_fleet_db()
        assert db.fleet.size == 2
        assert db.fleet.warehouse_names == ["fleet-vw0", "fleet-vw1"]
        assert not db.fleet.pending

    def test_unmasked_join_routable_immediately(self):
        db = make_fleet_db()
        name = db.scale_out(masked=False)
        assert db.fleet.size == 3
        assert name in db.fleet.router

    def test_masked_join_waits_for_warmup(self):
        db = make_fleet_db()
        db.execute(ann_sql(db))  # generate heat so the preloader has a hot set
        name = db.scale_out(masked=True)
        assert name in db.fleet.pending
        assert name not in db.fleet.router
        assert db.fleet.size == 2
        ready_at = db.fleet.pending[name]
        assert ready_at > db.clock.now  # warm-up cost was captured, not free
        db.clock.advance(ready_at - db.clock.now)
        assert db.fleet.poll() == [name]
        assert name in db.fleet.router and db.fleet.size == 3

    def test_masked_join_enters_warm(self):
        db = make_fleet_db()
        db.execute(ann_sql(db))
        name = db.scale_out(masked=True)
        joined = db.fleet.warehouse(name)
        # The preloader recorded per-segment preloads on the new member.
        snapshot = joined.access_stats.snapshot()
        assert sum(e["preloads"] for e in snapshot.values()) > 0

    def test_scale_in_refuses_last_member(self):
        db = make_fleet_db(warehouses=1)
        assert db.scale_in() is None
        assert db.fleet.size == 1

    def test_scale_in_folds_stats(self):
        db = make_fleet_db()
        db.execute(ann_sql(db))
        before = db.fleet.access_stats().total_hits + (
            db.fleet.access_stats().total_misses
        )
        assert before > 0
        removed = db.scale_in()
        assert removed is not None
        after_stats = db.fleet.access_stats()
        assert after_stats.total_hits + after_stats.total_misses == before


class TestPreloader:
    def test_warm_cost_is_captured_not_applied(self):
        db = make_fleet_db()
        db.execute(ann_sql(db))
        preloader = BackgroundPreloader(db.fleet)
        fresh = db.fleet.add_warehouse(masked=False)
        warehouse = db.fleet.warehouse(fresh)
        warehouse.invalidate_index(None)  # no-op; keep caches as-built
        before = db.clock.now
        loaded, cost_s = preloader.warm(warehouse)
        assert db.clock.now == before  # background timeline
        assert loaded > 0 and cost_s > 0

    def test_hot_set_filters_to_accessed_segments(self):
        db = make_fleet_db()
        # Touch one specific query so only scheduled segments get heat.
        db.execute(ann_sql(db))
        hot = db.fleet.hot_segments()
        assert hot
        all_segments = db.db.table("docs").manager.segment_ids()
        assert set(hot) <= set(all_segments)

    def test_no_heat_warms_full_catalog(self):
        db = make_fleet_db()
        preloader = BackgroundPreloader(db.fleet)
        name = db.fleet.add_warehouse(masked=False)
        loaded, _ = preloader.warm(db.fleet.warehouse(name))
        assert loaded == len(db.db.table("docs").manager.segment_ids())


class TestAutoscaler:
    @staticmethod
    def _scaler(db, threshold_s, **policy):
        monitor = SLOMonitor(db.clock)
        monitor.add_objective(
            SLObjective(
                "interactive-p99", kind="latency", target=0.99,
                threshold_s=threshold_s, lane="interactive",
            )
        )
        defaults = dict(
            objective="interactive-p99", cooldown_s=0.5, max_warehouses=4
        )
        defaults.update(policy)
        return db.attach_autoscaler(monitor, AutoscalerPolicy(**defaults))

    def test_burn_triggers_masked_scale_out(self):
        db = make_fleet_db()
        scaler = self._scaler(db, threshold_s=1e-9)  # everything breaches
        sql = ann_sql(db)
        for i in range(40):
            db.execute(sql, tenant=f"t{i % 4}")
            if scaler.history:
                break
        assert scaler.history and scaler.history[0].action == "scale_out"
        name = scaler.history[0].warehouse
        assert name in db.fleet.pending or name in db.fleet.router

    def test_cooldown_limits_action_rate(self):
        db = make_fleet_db()
        scaler = self._scaler(db, threshold_s=1e-9, cooldown_s=1e9)
        sql = ann_sql(db)
        for i in range(30):
            db.execute(sql, tenant=f"t{i % 4}")
        assert len(scaler.history) <= 1

    def test_max_warehouses_bounds_growth(self):
        db = make_fleet_db()
        scaler = self._scaler(db, threshold_s=1e-9, cooldown_s=0.0,
                              max_warehouses=3)
        sql = ann_sql(db)
        for i in range(60):
            db.execute(sql, tenant=f"t{i % 6}")
        assert db.fleet.size + len(db.fleet.pending) <= 3

    def test_quiet_burn_scales_in(self):
        db = make_fleet_db(warehouses=3)
        scaler = self._scaler(db, threshold_s=1e9, cooldown_s=0.0,
                              min_warehouses=2)
        sql = ann_sql(db)
        for i in range(20):
            db.execute(sql, tenant=f"t{i % 4}")
        assert any(d.action == "scale_in" for d in scaler.history)
        assert db.fleet.size >= 2


class TestFleetQueries:
    def test_results_match_core_engine(self):
        fleet_db = make_fleet_db(seed=5)
        core = BlendHouse()
        core.execute(
            "CREATE TABLE docs (id UInt64, label String, "
            f"embedding Array(Float32), INDEX ann embedding "
            f"TYPE FLAT('DIM={DIM}'))"
        )
        core.table("docs").writer.config.max_segment_rows = SEGMENT_ROWS
        rng = np.random.default_rng(5)
        rows = [
            {
                "id": i,
                "label": ["a", "b"][i % 2],
                "embedding": rng.normal(size=DIM).astype(np.float32),
            }
            for i in range(ROWS)
        ]
        core.insert_rows("docs", rows)
        sql = ann_sql(fleet_db)
        assert [r for r in fleet_db.execute(sql).rows] == (
            [r for r in core.execute(sql).rows]
        )

    def test_identical_across_warehouses(self):
        db = make_fleet_db()
        sql = ann_sql(db)
        results = {
            tuple(top_ids(db, sql, tenant=f"tenant-{i}")) for i in range(12)
        }
        assert len(results) == 1  # every member returns the same bytes
        served = {
            name for name in db.fleet.warehouse_names
            if db.metrics.count(f"fleet.served_by.{name}") > 0
        }
        assert len(served) > 1  # and more than one member actually served

    def test_staged_matches_direct(self):
        db = make_fleet_db()
        sql = ann_sql(db)
        direct = db.execute(sql, tenant="t-stage")
        stages = list(db.select_stages(sql, tenant="t-stage"))
        names = [stage.name for stage in stages]
        assert names[0] == "pin" and names[1] == "plan" and names[-1] == "finish"
        assert any(name.startswith("segment:") for name in names)
        final = stages[-1]
        assert final.result.rows == direct.rows
        assert final.flight["warehouse"] in db.fleet.warehouse_names
        assert db.db.table("docs").manager.store.pinned_count == 0

    def test_staged_generator_close_releases_pin(self):
        db = make_fleet_db()
        gen = db.select_stages(ann_sql(db))
        next(gen)
        assert db.db.table("docs").manager.store.pinned_count == 1
        gen.close()
        assert db.db.table("docs").manager.store.pinned_count == 0

    def test_results_stable_through_masked_scale_event(self):
        """The tentpole acceptance shape: byte-identical rows before,
        during (warm-up pending), and after a masked scale-out."""
        db = make_fleet_db()
        sql = ann_sql(db)
        tenants = [f"tenant-{i}" for i in range(8)]
        before = {t: top_ids(db, sql, tenant=t) for t in tenants}
        name = db.scale_out(masked=True)
        assert name in db.fleet.pending
        during = {t: top_ids(db, sql, tenant=t) for t in tenants}
        ready_at = db.fleet.pending.get(name)
        if ready_at is not None:
            db.clock.advance(max(0.0, ready_at - db.clock.now) + 1e-9)
        db.fleet.poll()
        assert name in db.fleet.router
        after = {t: top_ids(db, sql, tenant=t) for t in tenants}
        assert before == during == after

    def test_scale_event_races_ingest(self):
        """Satellite regression: scale out between a snapshot-pinned
        manifest and a concurrent ingest commit.  Routing entries are
        keyed per (segment_id, manifest_id, warehouse_id), so the new
        member never reuses another warehouse's cache entry and every
        query sees exactly its pinned manifest's rows."""
        db = make_fleet_db()
        sql = ann_sql(db)
        expected = top_ids(db, sql, tenant="race")
        gen = db.select_stages(sql, tenant="race")
        next(gen)  # pin the current manifest
        rng = np.random.default_rng(99)
        db.insert_rows(
            "docs",
            [
                {
                    "id": 10_000 + i,
                    "label": "new",
                    "embedding": rng.normal(size=DIM).astype(np.float32),
                }
                for i in range(SEGMENT_ROWS)
            ],
        )
        joined = db.scale_out(masked=True)
        stages = list(gen)  # drain the pinned query across the scale event
        assert [r[0] for r in stages[-1].result.rows] == expected
        ready_at = db.fleet.pending.get(joined)
        if ready_at is not None:
            db.clock.advance(max(0.0, ready_at - db.clock.now) + 1e-9)
        db.fleet.poll()
        post = top_ids(db, sql, tenant="race")
        assert post == top_ids(db, sql, tenant="race-check")
        assert db.db.table("docs").manager.store.pinned_count == 0


class TestSchedulerDirectory:
    def test_shared_directory_keys_by_warehouse(self):
        directory = {}
        a = SegmentScheduler(warehouse_id="vw-a", directory=directory)
        b = SegmentScheduler(warehouse_id="vw-b", directory=directory)
        for scheduler in (a, b):
            scheduler.add_worker("w0")
            scheduler.add_worker("w1")
        a.assign(["seg-1"], manifest_id=7)
        b.assign(["seg-1"], manifest_id=7)
        keys = sorted(directory)
        assert keys == [("seg-1", 7, "vw-a"), ("seg-1", 7, "vw-b")]

    def test_routed_worker_scoped_to_own_warehouse(self):
        directory = {}
        a = SegmentScheduler(warehouse_id="vw-a", directory=directory)
        b = SegmentScheduler(warehouse_id="vw-b", directory=directory)
        a.add_worker("a0")
        b.add_worker("b0")
        a.assign(["seg-1"], manifest_id=3)
        assert a.routed_worker("seg-1", 3) == "a0"
        assert b.routed_worker("seg-1", 3) is None

    def test_fleet_members_share_one_directory(self):
        db = make_fleet_db()
        db.execute(ann_sql(db))
        warehouses = {key[2] for key in db.fleet.directory}
        assert warehouses  # routes were published
        for warehouse in warehouses:
            assert warehouse in db.fleet.warehouse_names


class TestRoutedServing:
    def test_frontend_routes_by_tenant(self):
        db = make_fleet_db()
        sql = ann_sql(db)
        frontend = ServingFrontend(db, ServingConfig(max_inflight=4))
        direct = db.execute(sql)

        async def main():
            tasks = [
                asyncio.ensure_future(
                    frontend.submit(
                        QueryRequest(
                            sql=sql, tenant=f"tenant-{i}",
                            lane=Lane.INTERACTIVE,
                        )
                    )
                )
                for i in range(8)
            ]
            return await asyncio.gather(*tasks)

        replies = run_virtual(main())
        warehouses = set()
        for reply in replies:
            assert reply.ok, reply.error
            assert reply.result.rows == direct.rows
            warehouses.add(reply.flight["warehouse"])
        assert len(warehouses) > 1
        assert db.db.table("docs").manager.store.pinned_count == 0
