"""Shared test helpers (importable: tests/ is a package)."""

def vector_sql(vector) -> str:
    """Render a numpy vector as a SQL vector literal."""
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"
