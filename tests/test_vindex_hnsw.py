"""Tests for HNSW, including the native incremental iterator."""

import numpy as np
import pytest

from repro.errors import IndexParameterError
from repro.vindex.hnsw import HNSWIndex


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(500, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def index(data):
    idx = HNSWIndex(dim=16, m=8, ef_construction=64, seed=0)
    idx.add_with_ids(data, np.arange(data.shape[0]))
    return idx


def truth_ids(data, query, k):
    return np.argsort(np.linalg.norm(data - query, axis=1))[:k]


class TestRecall:
    def test_self_query_found(self, index, data):
        result = index.search_with_filter(data[13], 1, ef_search=32)
        assert result.ids[0] == 13

    def test_batch_recall(self, index, data):
        rng = np.random.default_rng(5)
        queries = data[rng.choice(len(data), 30, replace=False)] + 0.02
        hits = 0
        for q in queries:
            want = set(truth_ids(data, q, 10).tolist())
            got = index.search_with_filter(q, 10, ef_search=64)
            hits += len(set(got.ids.tolist()) & want)
        assert hits / 300 > 0.9

    def test_recall_improves_with_ef(self, index, data):
        rng = np.random.default_rng(6)
        queries = data[rng.choice(len(data), 20, replace=False)] + 0.05

        def recall(ef):
            hits = 0
            for q in queries:
                want = set(truth_ids(data, q, 10).tolist())
                got = index.search_with_filter(q, 10, ef_search=ef)
                hits += len(set(got.ids.tolist()) & want)
            return hits / 200

        assert recall(128) >= recall(10)

    def test_distances_sorted_and_true_l2(self, index, data):
        query = data[0] + 0.1
        result = index.search_with_filter(query, 10, ef_search=64)
        assert np.all(np.diff(result.distances) >= 0)
        # Distances must be true L2, not squared.
        expected = np.linalg.norm(data[result.ids[0]] - query)
        assert result.distances[0] == pytest.approx(expected, rel=1e-4)


class TestFiltering:
    def test_bitset_respected(self, index, data):
        bitset = np.zeros(len(data), dtype=bool)
        bitset[::5] = True
        result = index.search_with_filter(data[0], 10, bitset=bitset, ef_search=64)
        assert all(i % 5 == 0 for i in result.ids.tolist())
        assert len(result) == 10

    def test_sparse_bitset_widens_beam(self, index, data):
        bitset = np.zeros(len(data), dtype=bool)
        bitset[:12] = True  # only 12 allowed rows
        result = index.search_with_filter(data[100], 10, bitset=bitset, ef_search=16)
        assert len(result) == 10
        assert set(result.ids.tolist()) <= set(range(12))


class TestIterator:
    def test_batches_are_distance_ordered(self, index, data):
        iterator = index.search_iterator(data[0], batch_size=7, ef_search=32)
        seen = []
        for _ in range(5):
            batch = iterator.next_batch()
            seen.extend(batch.distances.tolist())
        assert all(seen[i] <= seen[i + 1] + 1e-6 for i in range(len(seen) - 1))

    def test_no_duplicates_across_batches(self, index, data):
        iterator = index.search_iterator(data[0], batch_size=10)
        ids = []
        for _ in range(10):
            ids.extend(iterator.next_batch().ids.tolist())
        assert len(ids) == len(set(ids))

    def test_iterator_with_bitset(self, index, data):
        bitset = np.zeros(len(data), dtype=bool)
        bitset[::2] = True
        iterator = index.search_iterator(data[0], bitset=bitset, batch_size=8)
        batch = iterator.next_batch()
        assert all(i % 2 == 0 for i in batch.ids.tolist())

    def test_exhaustion(self, data):
        small = HNSWIndex(dim=16, m=4, ef_construction=32, seed=0)
        small.add_with_ids(data[:20], np.arange(20))
        iterator = small.search_iterator(data[0], batch_size=8)
        total = []
        while not iterator.exhausted:
            batch = iterator.next_batch()
            if len(batch) == 0:
                break
            total.extend(batch.ids.tolist())
        assert sorted(total) == list(range(20))

    def test_iterator_matches_oneshot_prefix(self, index, data):
        query = data[77] + 0.03
        oneshot = index.search_with_filter(query, 20, ef_search=128)
        iterator = index.search_iterator(query, batch_size=10, ef_search=128)
        streamed = np.concatenate(
            [iterator.next_batch().ids, iterator.next_batch().ids]
        )
        overlap = len(set(streamed.tolist()) & set(oneshot.ids.tolist()))
        assert overlap >= 16  # near-identical top-20 sets

    def test_bad_batch_size(self, index, data):
        with pytest.raises(IndexParameterError):
            index.search_iterator(data[0], batch_size=0)


class TestLifecycle:
    def test_incremental_adds(self, data):
        idx = HNSWIndex(dim=16, m=8, ef_construction=48, seed=1)
        idx.add_with_ids(data[:100], np.arange(100))
        idx.add_with_ids(data[100:200], np.arange(100, 200))
        assert idx.ntotal == 200
        result = idx.search_with_filter(data[150], 1, ef_search=64)
        assert result.ids[0] == 150

    def test_parameter_validation(self):
        with pytest.raises(IndexParameterError):
            HNSWIndex(dim=8, m=1)
        with pytest.raises(IndexParameterError):
            HNSWIndex(dim=8, ef_construction=0)

    def test_serialization_roundtrip(self, index, data):
        from repro.vindex.registry import deserialize_index, serialize_index

        restored = deserialize_index(serialize_index(index))
        a = index.search_with_filter(data[9], 5, ef_search=50)
        b = restored.search_with_filter(data[9], 5, ef_search=50)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_memory_accounts_links(self, index, data):
        assert index.memory_bytes() > data.nbytes
