"""Tests for product quantization, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexNotTrainedError, IndexParameterError
from repro.vindex.pq import ProductQuantizer


@pytest.fixture
def trained(vectors):
    pq = ProductQuantizer(dim=16, m=4, nbits=8, seed=0)
    pq.train(vectors)
    return pq


class TestConstruction:
    def test_dim_divisible_by_m(self):
        with pytest.raises(IndexParameterError):
            ProductQuantizer(dim=10, m=3)

    def test_nbits_restricted(self):
        with pytest.raises(IndexParameterError):
            ProductQuantizer(dim=8, m=2, nbits=6)

    def test_ksub(self):
        assert ProductQuantizer(dim=8, m=2, nbits=4).ksub == 16
        assert ProductQuantizer(dim=8, m=2, nbits=8).ksub == 256


class TestTrainEncode:
    def test_untrained_encode_raises(self, vectors):
        with pytest.raises(IndexNotTrainedError):
            ProductQuantizer(dim=16, m=4).encode(vectors)

    def test_codes_shape_and_dtype(self, trained, vectors):
        codes = trained.encode(vectors)
        assert codes.shape == (vectors.shape[0], 4)
        assert codes.dtype == np.uint8

    def test_decode_reconstruction_reduces_error(self, trained, vectors):
        codes = trained.encode(vectors)
        recon = trained.decode(codes)
        err = np.linalg.norm(recon - vectors, axis=1).mean()
        baseline = np.linalg.norm(vectors - vectors.mean(axis=0), axis=1).mean()
        assert err < baseline  # better than the trivial one-centroid codec

    def test_small_training_set(self):
        pq = ProductQuantizer(dim=8, m=2, nbits=8)
        tiny = np.random.default_rng(0).normal(size=(10, 8)).astype(np.float32)
        pq.train(tiny)
        codes = pq.encode(tiny)
        assert codes.max() < 10  # only as many codewords as points


class TestADC:
    def test_adc_table_shape(self, trained, vectors):
        table = trained.adc_table(vectors[0])
        assert table.shape == (4, 256)
        assert np.all(table >= 0)

    def test_adc_matches_decoded_distance(self, trained, vectors):
        query = vectors[0]
        codes = trained.encode(vectors[:20])
        table = trained.adc_table(query)
        adc = trained.adc_distances(table, codes)
        decoded = trained.decode(codes)
        exact_sq = np.sum((decoded - query) ** 2, axis=1)
        np.testing.assert_allclose(adc, exact_sq, rtol=1e-3, atol=1e-3)

    def test_adc_ranks_near_neighbor_first(self, trained, vectors):
        codes = trained.encode(vectors)
        table = trained.adc_table(vectors[42])
        adc = trained.adc_distances(table, codes)
        assert int(np.argmin(adc)) == 42 or adc[42] <= np.partition(adc, 3)[3]


class TestAccounting:
    def test_code_bytes_per_vector(self):
        assert ProductQuantizer(dim=16, m=8, nbits=8).code_bytes_per_vector() == 8.0
        assert ProductQuantizer(dim=16, m=8, nbits=4).code_bytes_per_vector() == 4.0

    def test_memory_bytes_trained(self, trained):
        assert trained.memory_bytes() == trained.codebooks.nbytes

    def test_payload_roundtrip(self, trained, vectors):
        clone = ProductQuantizer.from_payload(trained.to_payload())
        np.testing.assert_array_equal(clone.encode(vectors), trained.encode(vectors))


class TestProperties:
    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_encode_decode_idempotent(self, seed):
        """decode(encode(x)) is a fixed point of encode."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(64, 8)).astype(np.float32)
        pq = ProductQuantizer(dim=8, m=2, nbits=4, seed=seed)
        pq.train(data)
        codes = pq.encode(data)
        recon = pq.decode(codes)
        np.testing.assert_array_equal(pq.encode(recon), codes)
