"""Serving front-end: admission control, lanes, quotas, cancellation.

Everything runs on the virtual-time event loop (``run_virtual``), so
queueing scenarios that would need real saturation are set up by
construction: a slot-holder query parks at a known virtual instant and
later submissions queue, bounce, or preempt deterministically.

The cancellation tests are the serving half of the MVCC leak guard:
``select_stages`` pins a snapshot at creation and must release it no
matter where the consumer stops — generator close, token cancellation,
deadline, or the asyncio task being torn down mid-stage.  Each test
asserts ``pinned_count == 0``, and under ``MVCC_LEAK_CHECK=1`` (the CI
concurrency-stress job) any pin that outlives its query fails the run
at process exit as well.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import BlendHouse
from repro.errors import (
    AdmissionRejectedError,
    QueryCancelledError,
    TenantQuotaExceededError,
)
from repro.executor.cancel import CancelToken
from repro.serving import (
    Lane,
    QueryRequest,
    ServingConfig,
    ServingFrontend,
    run_virtual,
)
from tests.helpers import vector_sql

DIM = 8
ROWS = 90
SEGMENT_ROWS = 30


def make_db(seed: int = 7) -> BlendHouse:
    """Three-segment table so staged execution has mid-query checkpoints."""
    rng = np.random.default_rng(seed)
    db = BlendHouse()
    db.execute(
        "CREATE TABLE t (id UInt64, views UInt64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE FLAT('DIM={DIM}'))"
    )
    db.table("t").writer.config.max_segment_rows = SEGMENT_ROWS
    db.insert_rows(
        "t",
        [
            {
                "id": i,
                "views": int(rng.integers(0, 1000)),
                "embedding": rng.normal(size=DIM).astype(np.float32),
            }
            for i in range(ROWS)
        ],
    )
    return db


def ann_sql(seed: int = 3, k: int = 5) -> str:
    query = np.random.default_rng(seed).normal(size=DIM).astype(np.float32)
    return (
        f"SELECT id, dist FROM t ORDER BY "
        f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {k}"
    )


def pinned(db: BlendHouse) -> int:
    return db.table("t").manager.store.pinned_count


def make_frontend(db: BlendHouse, **config) -> ServingFrontend:
    return ServingFrontend(db, ServingConfig(**config))


class TestStagedSelect:
    def test_stages_match_direct_execution(self):
        db = make_db()
        sql = ann_sql()
        direct = db.execute(sql)
        stages = list(db.select_stages(sql))
        names = [stage.name for stage in stages]
        assert names[0] == "pin" and names[1] == "plan"
        assert names[-2] == "scan" or "scan" in names
        assert names[-1] == "finish"
        assert sum(name.startswith("segment:") for name in names) == 3
        result = stages[-1].result
        assert result is not None
        assert result.rows == direct.rows
        assert pinned(db) == 0

    def test_generator_close_releases_pin(self):
        db = make_db()
        gen = db.select_stages(ann_sql())
        next(gen)  # pin
        next(gen)  # plan
        assert pinned(db) == 1
        gen.close()
        assert pinned(db) == 0

    def test_token_cancellation_releases_pin(self):
        db = make_db()
        token = CancelToken()
        gen = db.select_stages(ann_sql(), cancel=token)
        next(gen)
        token.cancel("client gone")
        with pytest.raises(QueryCancelledError):
            for _ in gen:
                pass
        assert pinned(db) == 0


class TestAdmissionControl:
    def test_overload_rejects_beyond_queue_depth(self):
        db = make_db()
        frontend = make_frontend(db, max_inflight=1, max_queue_depth=1)
        sql = ann_sql()

        async def main():
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(frontend.submit(QueryRequest(sql=sql)))
                for _ in range(6)
            ]
            return await asyncio.gather(*tasks)

        replies = run_virtual(main())
        statuses = sorted(reply.status for reply in replies)
        # 1 slot + 1 queue entry serve in turn; the burst of 6 lands on
        # one tick, so exactly the first two are ever admitted.
        assert statuses.count("ok") == 2
        assert statuses.count("rejected_admission") == 4
        assert frontend.running == 0 and frontend.queued == 0
        assert pinned(db) == 0

    def test_rejection_unwraps_to_typed_error(self):
        db = make_db()
        frontend = make_frontend(db, max_inflight=1, max_queue_depth=0)
        sql = ann_sql()

        async def main():
            loop = asyncio.get_running_loop()
            hold = loop.create_task(frontend.submit(QueryRequest(sql=sql)))
            await asyncio.sleep(0)
            bounced = await frontend.submit(QueryRequest(sql=sql))
            await hold
            return bounced

        bounced = run_virtual(main())
        assert bounced.status == "rejected_admission"
        with pytest.raises(AdmissionRejectedError):
            frontend.unwrap(bounced)


class TestPriorityLanes:
    def test_interactive_granted_before_earlier_batch(self):
        db = make_db()
        frontend = make_frontend(db, max_inflight=1, max_queue_depth=8)
        sql = ann_sql()
        order = []

        async def submit(label, lane):
            reply = await frontend.submit(QueryRequest(sql=sql, lane=lane))
            assert reply.ok
            order.append(label)

        async def main():
            loop = asyncio.get_running_loop()
            tasks = [loop.create_task(submit("first", Lane.INTERACTIVE))]
            await asyncio.sleep(0)  # first query takes the only slot
            # Batch queries queue strictly before the interactive ones...
            tasks += [
                loop.create_task(submit(f"batch-{i}", Lane.BATCH))
                for i in range(2)
            ]
            await asyncio.sleep(0)
            tasks += [
                loop.create_task(submit(f"inter-{i}", Lane.INTERACTIVE))
                for i in range(2)
            ]
            await asyncio.gather(*tasks)

        run_virtual(main())
        # ...yet every queued interactive query is granted a slot first.
        assert order == ["first", "inter-0", "inter-1", "batch-0", "batch-1"]
        assert pinned(db) == 0


class TestTenantQuota:
    def test_quota_bounces_second_inflight_query(self):
        db = make_db()
        frontend = make_frontend(db, max_inflight=4, tenant_quota=1)
        sql = ann_sql()

        async def main():
            loop = asyncio.get_running_loop()
            first = loop.create_task(
                frontend.submit(QueryRequest(sql=sql, tenant="a"))
            )
            await asyncio.sleep(0)
            assert frontend.tenant_inflight("a") == 1
            over = await frontend.submit(QueryRequest(sql=sql, tenant="a"))
            other = await frontend.submit(QueryRequest(sql=sql, tenant="b"))
            return await first, over, other

        first, over, other = run_virtual(main())
        assert first.ok and other.ok
        assert over.status == "rejected_quota"
        with pytest.raises(TenantQuotaExceededError):
            frontend.unwrap(over)
        assert frontend.tenant_inflight("a") == 0
        assert pinned(db) == 0

    def test_quota_released_after_completion(self):
        db = make_db()
        frontend = make_frontend(db, max_inflight=2, tenant_quota=1)
        sql = ann_sql()

        async def main():
            # Sequential queries from one tenant all pass: the quota
            # meters in-flight work, not lifetime usage.
            replies = []
            for _ in range(3):
                replies.append(
                    await frontend.submit(QueryRequest(sql=sql, tenant="a"))
                )
            return replies

        assert all(reply.ok for reply in run_virtual(main()))


class TestTimeouts:
    def test_deadline_mid_execution_unwinds_pin(self):
        db = make_db()
        frontend = make_frontend(db, max_inflight=1)
        sql = ann_sql()

        async def main():
            return await frontend.submit(
                QueryRequest(sql=sql, timeout_s=1e-9)
            )

        reply = run_virtual(main())
        assert reply.status == "timeout"
        assert reply.result is None
        assert frontend.running == 0
        assert pinned(db) == 0

    def test_session_close_cancels_inflight(self):
        db = make_db()
        frontend = make_frontend(db, max_inflight=1)
        sql = ann_sql()

        async def main():
            session = frontend.session(tenant="a")
            task = asyncio.get_running_loop().create_task(session.submit(sql))
            await asyncio.sleep(0)
            session.close()
            return await task

        reply = run_virtual(main())
        assert reply.status == "cancelled"
        assert pinned(db) == 0


class TestCancellationNeverLeaksPins:
    """Hypothesis storms: stop a query at an arbitrary point, by any
    mechanism, and the snapshot pin count must return to zero."""

    @given(stop_after=st.integers(0, 8))
    @settings(max_examples=20, deadline=None)
    def test_generator_abandoned_at_any_stage(self, stop_after):
        db = make_db()
        gen = db.select_stages(ann_sql())
        for _ in range(stop_after):
            try:
                next(gen)
            except StopIteration:
                break
        gen.close()
        assert pinned(db) == 0

    @given(
        cancel_at=st.floats(0.0, 2e-3),
        victims=st.lists(st.integers(0, 7), min_size=1, max_size=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_task_cancel_storm_under_load(self, cancel_at, victims):
        db = make_db()
        frontend = make_frontend(db, max_inflight=2, max_queue_depth=16)
        sql = ann_sql()

        async def main():
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(frontend.submit(QueryRequest(sql=sql)))
                for _ in range(8)
            ]
            await asyncio.sleep(cancel_at)
            for index in victims:
                tasks[index].cancel()
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = run_virtual(main())
        # A cancelled task propagates CancelledError; everything else is
        # a terminal reply. Either way, no slot and no pin survives.
        for item in results:
            if not isinstance(item, asyncio.CancelledError):
                assert item.status in ("ok", "cancelled", "rejected_admission")
        assert frontend.running == 0 and frontend.queued == 0
        assert pinned(db) == 0
