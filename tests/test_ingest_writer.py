"""Tests for the write path: partitioning, segments, pipelined builds."""

import numpy as np
import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import TableSchema
from repro.errors import SchemaError
from repro.ingest.writer import IngestConfig, SegmentWriter, _pipeline_total
from repro.sqlparser.parser import parse_statement
from repro.storage.lsm import SegmentManager
from repro.storage.objectstore import ObjectStore
from repro.vindex.registry import IndexSpec


def make_writer(clock, cost, ddl, index_type="FLAT", dim=8, **cfg):
    store = ObjectStore(clock, cost)
    catalog = Catalog()
    statement = parse_statement(ddl)
    spec = IndexSpec(index_type=index_type, dim=dim)
    schema = TableSchema.from_ddl(
        statement.name, statement.columns, index_spec=spec,
        partition_by=statement.partition_by,
        cluster_by=statement.cluster_by,
        cluster_buckets=statement.cluster_buckets,
    )
    entry = catalog.create_table(schema)
    manager = SegmentManager()
    writer = SegmentWriter(
        entry, manager, store, clock, cost_model=cost,
        config=IngestConfig(**cfg),
    )
    return writer, manager, store, entry


PLAIN_DDL = "CREATE TABLE t (id UInt64, label String, embedding Array(Float32))"
PARTITIONED_DDL = (
    "CREATE TABLE t (id UInt64, label String, embedding Array(Float32)) "
    "PARTITION BY label"
)
CLUSTERED_DDL = (
    "CREATE TABLE t (id UInt64, label String, embedding Array(Float32)) "
    "CLUSTER BY embedding INTO 3 BUCKETS"
)


def rows(n, dim=8, seed=0, labels=("a", "b")):
    rng = np.random.default_rng(seed)
    return [
        {"id": i, "label": labels[i % len(labels)],
         "embedding": rng.normal(size=dim).astype(np.float32)}
        for i in range(n)
    ]


class TestBasicIngest:
    def test_rows_land_in_segments(self, clock, cost):
        writer, manager, _, _ = make_writer(clock, cost, PLAIN_DDL, max_segment_rows=50)
        report = writer.ingest_rows(rows(120))
        assert report.rows == 120
        assert len(report.segment_ids) == 3
        assert manager.total_rows() == 120

    def test_empty_batch(self, clock, cost):
        writer, manager, _, _ = make_writer(clock, cost, PLAIN_DDL)
        report = writer.ingest_rows([])
        assert report.rows == 0
        assert len(manager) == 0

    def test_segments_persisted(self, clock, cost):
        writer, manager, store, _ = make_writer(clock, cost, PLAIN_DDL)
        writer.ingest_rows(rows(30))
        sid = manager.segment_ids()[0]
        assert f"segments/{sid}/meta" in store

    def test_index_built_and_persisted(self, clock, cost):
        writer, manager, store, _ = make_writer(clock, cost, PLAIN_DDL)
        writer.ingest_rows(rows(30))
        sid = manager.segment_ids()[0]
        key = manager.index_key(sid)
        assert key in store
        assert key in writer.built_indexes

    def test_per_segment_index_uses_row_offsets(self, clock, cost):
        writer, manager, _, _ = make_writer(clock, cost, PLAIN_DDL, max_segment_rows=20)
        writer.ingest_rows(rows(40))
        for sid in manager.segment_ids():
            index = writer.built_indexes[manager.index_key(sid)]
            segment = manager.segment(sid)
            result = index.search_with_filter(segment.vectors()[3], 1)
            assert result.ids[0] == 3  # offset within the segment

    def test_dim_inferred_from_first_insert(self, clock, cost):
        writer, _, _, entry = make_writer(clock, cost, PLAIN_DDL, dim=1)
        entry.schema.vector_dim = 0
        writer.ingest_rows(rows(10))
        assert entry.schema.vector_dim == 8

    def test_dim_mismatch_rejected(self, clock, cost):
        writer, _, _, _ = make_writer(clock, cost, PLAIN_DDL)
        bad = rows(5, dim=4)
        with pytest.raises(SchemaError):
            writer.ingest_rows(bad)

    def test_statistics_refreshed(self, clock, cost):
        writer, _, _, entry = make_writer(clock, cost, PLAIN_DDL)
        writer.ingest_rows(rows(50))
        assert entry.statistics.row_count == 50
        assert "id" in entry.statistics.histograms
        assert "label" in entry.statistics.string_stats


class TestPartitioning:
    def test_scalar_partitions_split_segments(self, clock, cost):
        writer, manager, _, _ = make_writer(clock, cost, PARTITIONED_DDL)
        writer.ingest_rows(rows(40))
        keys = {seg.meta.partition_key for seg in manager.segments()}
        assert keys == {("a",), ("b",)}

    def test_semantic_buckets_assigned(self, clock, cost):
        writer, manager, _, _ = make_writer(clock, cost, CLUSTERED_DDL)
        writer.ingest_rows(rows(60))
        buckets = {seg.meta.bucket_id for seg in manager.segments()}
        assert buckets <= {0, 1, 2}
        assert len(buckets) >= 2
        for seg in manager.segments():
            assert seg.meta.centroid is not None

    def test_bucket_centroids_stable_across_batches(self, clock, cost):
        writer, _, _, _ = make_writer(clock, cost, CLUSTERED_DDL)
        writer.ingest_rows(rows(60, seed=0))
        first = writer._bucket_centroids.copy()
        writer.ingest_rows(rows(60, seed=1))
        np.testing.assert_array_equal(writer._bucket_centroids, first)


class TestPipelining:
    def test_pipeline_total_recurrence(self):
        # write: 2,2,2 ; build: 3,3,3 → 2 + 3*3 = 11 (build-bound)
        assert _pipeline_total([2, 2, 2], [3, 3, 3]) == pytest.approx(11)
        # write-bound: write 5,5 build 1,1 → 5+5+1 = 11
        assert _pipeline_total([5, 5], [1, 1]) == pytest.approx(11)
        assert _pipeline_total([], []) == 0.0

    def test_pipelined_faster_than_blocking(self, clock, cost):
        writer, _, _, _ = make_writer(
            clock, cost, PLAIN_DDL, index_type="HNSW",
            max_segment_rows=40, pipelined_index_build=True,
        )
        pipelined = writer.ingest_rows(rows(160)).simulated_seconds

        clock2 = type(clock)()
        writer2, _, _, _ = make_writer(
            clock2, cost, PLAIN_DDL, index_type="HNSW",
            max_segment_rows=40, pipelined_index_build=False,
        )
        report = writer2.ingest_rows(rows(160))
        blocking = report.simulated_seconds
        assert pipelined < blocking
        assert blocking == pytest.approx(report.write_seconds + report.build_seconds)

    def test_report_decomposition(self, clock, cost):
        writer, _, _, _ = make_writer(clock, cost, PLAIN_DDL, max_segment_rows=40)
        report = writer.ingest_rows(rows(120))
        assert report.write_seconds > 0
        assert report.simulated_seconds <= report.write_seconds + report.build_seconds + 1e-9

    def test_clock_advanced_by_total(self, clock, cost):
        writer, _, _, _ = make_writer(clock, cost, PLAIN_DDL)
        before = clock.now
        report = writer.ingest_rows(rows(30))
        assert clock.now - before == pytest.approx(report.simulated_seconds)


class TestAutoIndex:
    def test_auto_nlist_applied(self, clock, cost):
        writer, _, _, _ = make_writer(
            clock, cost, PLAIN_DDL, index_type="IVFFLAT", auto_index=True,
        )
        report = writer.ingest_rows(rows(500))
        spec = report.index_specs[0]
        assert "nlist" in spec.params

    def test_auto_index_disabled(self, clock, cost):
        writer, _, _, _ = make_writer(
            clock, cost, PLAIN_DDL, index_type="IVFFLAT", auto_index=False,
        )
        report = writer.ingest_rows(rows(500))
        assert "nlist" not in report.index_specs[0].params
