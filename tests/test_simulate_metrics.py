"""Tests for metric collectors."""

import pytest

from repro.simulate.metrics import (
    Histogram,
    LatencyRecorder,
    MetricRegistry,
    ThroughputWindow,
    percentile,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == pytest.approx(2.0)

    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestLatencyRecorder:
    def test_record_and_count(self):
        rec = LatencyRecorder()
        rec.record(0.1)
        rec.extend([0.2, 0.3])
        assert rec.count == 3
        assert rec.total() == pytest.approx(0.6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_qps(self):
        rec = LatencyRecorder()
        rec.extend([0.1] * 10)
        assert rec.qps() == pytest.approx(10.0)

    def test_qps_empty_is_zero(self):
        assert LatencyRecorder().qps() == 0.0

    def test_percentile_empty_window_is_none(self):
        # Regression: live tail polling (serving load generator) samples
        # p99 before the first completion; an empty window answers None
        # instead of raising out of the module-level percentile().
        assert LatencyRecorder().percentile(99.0) is None

    def test_percentile_nonempty(self):
        rec = LatencyRecorder()
        rec.extend([0.3, 0.1, 0.2])
        assert rec.percentile(50) == pytest.approx(0.2)
        assert rec.percentile(100) == pytest.approx(0.3)

    def test_qps_zero_cost_observations_is_infinite(self):
        # Regression: N queries costing zero simulated time are infinitely
        # fast, not 0 QPS — the all-memory-hit workload must not report
        # as the slowest one.
        rec = LatencyRecorder()
        rec.extend([0.0, 0.0, 0.0])
        assert rec.qps() == float("inf")
        assert rec.count == 3

    def test_summary(self):
        rec = LatencyRecorder()
        rec.extend([0.1, 0.2, 0.3, 0.4, 0.5])
        summary = rec.summary()
        assert summary.count == 5
        assert summary.mean == pytest.approx(0.3)
        assert summary.p50 == pytest.approx(0.3)
        assert summary.minimum == 0.1
        assert summary.maximum == 0.5

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().summary()

    def test_clear(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        rec.clear()
        assert rec.count == 0

    def test_summary_as_dict(self):
        rec = LatencyRecorder()
        rec.extend([0.1, 0.2])
        d = rec.summary().as_dict()
        assert set(d) == {"count", "mean", "p50", "p95", "p99", "min", "max"}


class TestThroughputWindow:
    def test_series_buckets(self):
        window = ThroughputWindow(1.0)
        for t in (0.1, 0.2, 1.5, 2.9):
            window.record(t)
        series = window.series()
        assert series == [(0.0, 2.0), (1.0, 1.0), (2.0, 1.0)]

    def test_gap_buckets_reported_as_zero(self):
        window = ThroughputWindow(1.0)
        window.record(0.5)
        window.record(3.5)
        series = dict(window.series())
        assert series[1.0] == 0.0 and series[2.0] == 0.0

    def test_empty(self):
        assert ThroughputWindow(1.0).series() == []

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            ThroughputWindow(0)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            ThroughputWindow(1.0).record(-1)


class TestHistogram:
    def test_observe_and_cumulative(self):
        hist = Histogram(bounds=[0.001, 0.01, 0.1])
        for value in (0.0005, 0.005, 0.05, 5.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.cumulative_counts() == [1, 2, 3]
        assert hist.total == pytest.approx(5.0555)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1.0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[])

    def test_bounds_sorted(self):
        hist = Histogram(bounds=[0.1, 0.001])
        assert hist.bounds == (0.001, 0.1)

    def test_as_dict(self):
        hist = Histogram(bounds=[1.0])
        hist.observe(0.5)
        d = hist.as_dict()
        assert d["count"] == 1
        assert d["cumulative"] == [1]
        assert d["sum"] == pytest.approx(0.5)


class TestMetricRegistry:
    def test_counters(self):
        registry = MetricRegistry()
        registry.incr("a")
        registry.incr("a", 4)
        assert registry.count("a") == 5
        assert registry.count("missing") == 0

    def test_latency_recorders(self):
        registry = MetricRegistry()
        registry.record_latency("q", 0.2)
        assert registry.latency("q").count == 1

    def test_reset(self):
        registry = MetricRegistry()
        registry.incr("a")
        registry.record_latency("q", 0.1)
        registry.reset()
        assert registry.count("a") == 0
        assert registry.latency("q").count == 0
        assert registry.histogram("q").count == 0

    def test_record_latency_feeds_histogram(self):
        registry = MetricRegistry()
        registry.record_latency("q", 0.2)
        assert registry.histogram("q").count == 1

    def test_as_dict_shape(self):
        registry = MetricRegistry()
        registry.incr("hits", 3)
        registry.record_latency("q", 0.1)
        registry.latency("silent")  # no observations → omitted
        exported = registry.as_dict()
        assert exported["counters"] == {"hits": 3}
        assert exported["latencies"]["q"]["count"] == 1
        assert "silent" not in exported["latencies"]
        assert exported["histograms"]["q"]["count"] == 1

    def test_render_prometheus_text(self):
        registry = MetricRegistry()
        registry.incr("cache.hits", 2)
        registry.record_latency("query.latency", 0.25)
        text = registry.render()
        assert "# TYPE cache_hits_total counter" in text
        assert "cache_hits_total 2" in text
        assert 'query_latency_seconds{quantile="0.5"} 0.25' in text
        assert "query_latency_seconds_count 1" in text
        assert 'query_latency_seconds_bucket{le="+Inf"} 1' in text
