"""Tests for metric collectors."""

import pytest

from repro.simulate.metrics import (
    LatencyRecorder,
    MetricRegistry,
    ThroughputWindow,
    percentile,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == pytest.approx(2.0)

    def test_endpoints(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestLatencyRecorder:
    def test_record_and_count(self):
        rec = LatencyRecorder()
        rec.record(0.1)
        rec.extend([0.2, 0.3])
        assert rec.count == 3
        assert rec.total() == pytest.approx(0.6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_qps(self):
        rec = LatencyRecorder()
        rec.extend([0.1] * 10)
        assert rec.qps() == pytest.approx(10.0)

    def test_qps_empty_is_zero(self):
        assert LatencyRecorder().qps() == 0.0

    def test_summary(self):
        rec = LatencyRecorder()
        rec.extend([0.1, 0.2, 0.3, 0.4, 0.5])
        summary = rec.summary()
        assert summary.count == 5
        assert summary.mean == pytest.approx(0.3)
        assert summary.p50 == pytest.approx(0.3)
        assert summary.minimum == 0.1
        assert summary.maximum == 0.5

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().summary()

    def test_clear(self):
        rec = LatencyRecorder()
        rec.record(1.0)
        rec.clear()
        assert rec.count == 0

    def test_summary_as_dict(self):
        rec = LatencyRecorder()
        rec.extend([0.1, 0.2])
        d = rec.summary().as_dict()
        assert set(d) == {"count", "mean", "p50", "p95", "p99", "min", "max"}


class TestThroughputWindow:
    def test_series_buckets(self):
        window = ThroughputWindow(1.0)
        for t in (0.1, 0.2, 1.5, 2.9):
            window.record(t)
        series = window.series()
        assert series == [(0.0, 2.0), (1.0, 1.0), (2.0, 1.0)]

    def test_gap_buckets_reported_as_zero(self):
        window = ThroughputWindow(1.0)
        window.record(0.5)
        window.record(3.5)
        series = dict(window.series())
        assert series[1.0] == 0.0 and series[2.0] == 0.0

    def test_empty(self):
        assert ThroughputWindow(1.0).series() == []

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            ThroughputWindow(0)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            ThroughputWindow(1.0).record(-1)


class TestMetricRegistry:
    def test_counters(self):
        registry = MetricRegistry()
        registry.incr("a")
        registry.incr("a", 4)
        assert registry.count("a") == 5
        assert registry.count("missing") == 0

    def test_latency_recorders(self):
        registry = MetricRegistry()
        registry.record_latency("q", 0.2)
        assert registry.latency("q").count == 1

    def test_reset(self):
        registry = MetricRegistry()
        registry.incr("a")
        registry.record_latency("q", 0.1)
        registry.reset()
        assert registry.count("a") == 0
        assert registry.latency("q").count == 0
