"""Tests for engine features added beyond the first pass: index metrics
(METRIC option), metric-mismatch safety, and DROP TABLE garbage
collection."""

import numpy as np
import pytest

from repro.core.database import BlendHouse

from tests.helpers import vector_sql


def normalized_rows(rng, n=300, dim=8):
    vectors = rng.normal(size=(n, dim)).astype(np.float32)
    vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
    return [
        {"id": i, "embedding": vectors[i]} for i in range(n)
    ], vectors


class TestMetricOption:
    def test_metric_parsed_into_spec(self):
        db = BlendHouse()
        db.execute(
            "CREATE TABLE t (id UInt64, embedding Array(Float32), "
            "INDEX ann embedding TYPE HNSW('DIM=8', 'METRIC=cosine'))"
        )
        assert db.table("t").entry.schema.index_spec.metric == "cosine"

    def test_cosine_index_serves_cosine_queries(self, rng):
        db = BlendHouse()
        db.execute(
            "CREATE TABLE t (id UInt64, embedding Array(Float32), "
            "INDEX ann embedding TYPE HNSW('DIM=8', 'METRIC=cosine'))"
        )
        rows, vectors = normalized_rows(rng)
        db.insert_rows("t", rows)
        query = vectors[13]
        result = db.execute(
            f"SELECT id, dist FROM t ORDER BY "
            f"CosineDistance(embedding, {vector_sql(query)}) AS dist LIMIT 5"
        )
        assert result.rows[0][0] == 13
        # Cosine self-distance is ~0.
        assert result.rows[0][1] == pytest.approx(0.0, abs=1e-5)

    def test_ip_metric_end_to_end(self, rng):
        db = BlendHouse()
        db.execute(
            "CREATE TABLE t (id UInt64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=8', 'METRIC=ip'))"
        )
        rows, vectors = normalized_rows(rng)
        db.insert_rows("t", rows)
        query = vectors[7]
        result = db.execute(
            f"SELECT id FROM t ORDER BY "
            f"IPDistance(embedding, {vector_sql(query)}) LIMIT 1"
        )
        expected = int(np.argmax(vectors @ query))
        assert result.rows[0][0] == expected


class TestMetricMismatchSafety:
    @pytest.fixture
    def l2_db(self, rng):
        db = BlendHouse()
        db.execute(
            "CREATE TABLE t (id UInt64, embedding Array(Float32), "
            "INDEX ann embedding TYPE HNSW('DIM=8'))"  # l2 index
        )
        rows, vectors = normalized_rows(rng)
        db.insert_rows("t", rows)
        return db, vectors

    def test_mismatched_query_still_correct(self, l2_db):
        db, vectors = l2_db
        query = vectors[21]
        result = db.execute(
            f"SELECT id FROM t ORDER BY "
            f"CosineDistance(embedding, {vector_sql(query)}) LIMIT 5"
        )
        cosine = 1.0 - vectors @ query / (
            np.linalg.norm(vectors, axis=1) * np.linalg.norm(query)
        )
        expected = np.argsort(cosine)[:5].tolist()
        assert [row[0] for row in result.rows] == expected
        assert db.metrics.count("planner.metric_mismatch_fallbacks") >= 1

    def test_matching_query_uses_index(self, l2_db):
        db, vectors = l2_db
        query = vectors[21]
        db.execute(
            f"SELECT id FROM t ORDER BY "
            f"L2Distance(embedding, {vector_sql(query)}) LIMIT 5"
        )
        assert db.metrics.count("planner.metric_mismatch_fallbacks") == 0


class TestDropTableGC:
    def test_store_objects_deleted(self, rng):
        db = BlendHouse()
        db.execute(
            "CREATE TABLE t (id UInt64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=8'))"
        )
        rows, _ = normalized_rows(rng, n=100)
        db.insert_rows("t", rows)
        assert db.store.list_keys("segments/")
        assert db.store.list_keys("indexes/")
        db.execute("DROP TABLE t")
        assert db.store.list_keys("segments/") == []
        assert db.store.list_keys("indexes/") == []

    def test_drop_missing_if_exists_no_gc_crash(self):
        db = BlendHouse()
        assert db.execute("DROP TABLE IF EXISTS ghost") is False

    def test_recreate_after_drop(self, rng):
        db = BlendHouse()
        ddl = ("CREATE TABLE t (id UInt64, embedding Array(Float32), "
               "INDEX ann embedding TYPE FLAT('DIM=8'))")
        db.execute(ddl)
        rows, vectors = normalized_rows(rng, n=50)
        db.insert_rows("t", rows)
        db.execute("DROP TABLE t")
        db.execute(ddl)
        db.insert_rows("t", rows)
        result = db.execute(
            f"SELECT id FROM t ORDER BY "
            f"L2Distance(embedding, {vector_sql(vectors[3])}) LIMIT 1"
        )
        assert result.rows[0][0] == 3
