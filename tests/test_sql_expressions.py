"""Tests for batch expression evaluation, including hypothesis checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BindError
from repro.sqlparser.expressions import evaluate_predicate
from repro.sqlparser.parser import parse_statement


def predicate(text):
    return parse_statement(f"SELECT id FROM t WHERE {text}").where


@pytest.fixture
def columns():
    return {
        "a": np.array([1, 5, 10, 50, 100]),
        "b": np.array([2.0, 4.0, 6.0, 8.0, 10.0]),
        "name": ["alpha", "beta", "42gamma", "delta", "beta"],
    }


class TestComparisons:
    def test_numeric_ops(self, columns):
        cases = {
            "a = 5": [0, 1, 0, 0, 0],
            "a != 5": [1, 0, 1, 1, 1],
            "a < 10": [1, 1, 0, 0, 0],
            "a <= 10": [1, 1, 1, 0, 0],
            "a > 10": [0, 0, 0, 1, 1],
            "a >= 10": [0, 0, 1, 1, 1],
        }
        for text, expected in cases.items():
            mask = evaluate_predicate(predicate(text), columns, 5)
            np.testing.assert_array_equal(mask, np.array(expected, dtype=bool), text)

    def test_column_to_column(self, columns):
        mask = evaluate_predicate(predicate("a < b"), columns, 5)
        np.testing.assert_array_equal(mask, [True, False, False, False, False])

    def test_string_equality(self, columns):
        mask = evaluate_predicate(predicate("name = 'beta'"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, False, False, True])

    def test_arithmetic(self, columns):
        mask = evaluate_predicate(predicate("a + 1 = 6"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, False, False, False])

    def test_modulo(self, columns):
        mask = evaluate_predicate(predicate("a % 2 = 0"), columns, 5)
        np.testing.assert_array_equal(mask, [False, False, True, True, True])


class TestLogical:
    def test_and_or_not(self, columns):
        mask = evaluate_predicate(
            predicate("a < 10 AND b > 3 OR NOT name = 'beta'"), columns, 5
        )
        np.testing.assert_array_equal(mask, [True, True, True, True, False])

    def test_between(self, columns):
        mask = evaluate_predicate(predicate("a BETWEEN 5 AND 50"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, True, True, False])

    def test_in_list_numeric(self, columns):
        mask = evaluate_predicate(predicate("a IN (1, 100)"), columns, 5)
        np.testing.assert_array_equal(mask, [True, False, False, False, True])

    def test_in_list_strings(self, columns):
        mask = evaluate_predicate(
            predicate("name IN ('alpha', 'delta')"), columns, 5
        )
        np.testing.assert_array_equal(mask, [True, False, False, True, False])

    def test_not_in(self, columns):
        mask = evaluate_predicate(predicate("a NOT IN (1, 100)"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, True, True, False])


class TestStringMatching:
    def test_like_contains(self, columns):
        mask = evaluate_predicate(predicate("name LIKE '%eta%'"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, False, False, True])

    def test_like_anchored(self, columns):
        mask = evaluate_predicate(predicate("name LIKE 'a%'"), columns, 5)
        np.testing.assert_array_equal(mask, [True, False, False, False, False])

    def test_like_underscore(self, columns):
        mask = evaluate_predicate(predicate("name LIKE 'bet_'"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, False, False, True])

    def test_regexp(self, columns):
        mask = evaluate_predicate(predicate("name REGEXP '^[0-9]'"), columns, 5)
        np.testing.assert_array_equal(mask, [False, False, True, False, False])

    def test_pattern_must_be_literal(self, columns):
        with pytest.raises(BindError):
            evaluate_predicate(predicate("name LIKE name"), columns, 5)


class TestFunctions:
    def test_distance_function(self):
        columns = {"v": np.eye(3, dtype=np.float32)}
        expr = predicate("L2Distance(v, [1.0, 0.0, 0.0]) < 1.0")
        mask = evaluate_predicate(expr, columns, 3)
        np.testing.assert_array_equal(mask, [True, False, False])

    def test_toyyyymmdd_identity(self):
        columns = {"d": np.array([20240101, 20240102])}
        expr = predicate("toYYYYMMDD(d) = 20240102")
        mask = evaluate_predicate(expr, columns, 2)
        np.testing.assert_array_equal(mask, [False, True])

    def test_abs(self, columns):
        mask = evaluate_predicate(predicate("abs(a - 10) <= 5"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, True, False, False])

    def test_length(self, columns):
        mask = evaluate_predicate(predicate("length(name) = 4"), columns, 5)
        np.testing.assert_array_equal(mask, [False, True, False, False, True])

    def test_unknown_function_rejected(self, columns):
        with pytest.raises(BindError):
            evaluate_predicate(predicate("mystery(a) = 1"), columns, 5)

    def test_unknown_column_rejected(self, columns):
        with pytest.raises(BindError):
            evaluate_predicate(predicate("ghost = 1"), columns, 5)


class TestProperties:
    @given(
        values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=40),
        threshold=st.integers(min_value=-100, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_predicate_matches_python(self, values, threshold):
        columns = {"x": np.array(values)}
        mask = evaluate_predicate(predicate(f"x < {threshold}"), columns, len(values))
        expected = [v < threshold for v in values]
        np.testing.assert_array_equal(mask, expected)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30),
        low=st.integers(min_value=0, max_value=20),
        high=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_between_equals_two_comparisons(self, values, low, high):
        columns = {"x": np.array(values)}
        n = len(values)
        between = evaluate_predicate(
            predicate(f"x BETWEEN {low} AND {high}"), columns, n
        )
        composed = evaluate_predicate(
            predicate(f"x >= {low} AND x <= {high}"), columns, n
        )
        np.testing.assert_array_equal(between, composed)
