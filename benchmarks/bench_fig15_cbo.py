"""Fig 15 — QPS with the cost-based optimizer on vs off.

Paper: for hybrid queries at "1% selectivity" (≈99% of rows pass the
filter), the CBO picks the cheaper post-filter strategy; with CBO
disabled the engine defaults to pre-filter and loses throughput.
"""

import pytest

from benchmarks.common import fmt_table, measure_blendhouse, record
from repro.planner.optimizer import ExecutionStrategy
from repro.sqlparser.parser import parse_statement
from repro.workloads.vectorbench import make_hybrid_workload


@pytest.fixture(scope="module")
def workload(cohere_ds):
    return make_hybrid_workload(cohere_ds, k=10, pass_fraction=0.99)


def test_fig15_cbo_on_off(benchmark, reset_settings, workload):
    db = reset_settings
    db.execute(workload.sql(0))  # warmup

    db.execute("SET enable_cbo = 1")
    plan = db._plan_select(workload.sql(1), parse_statement(workload.sql(1)))
    strategy_on = plan.strategy
    qps_on, recall_on = measure_blendhouse(db, workload)

    db.execute("SET enable_cbo = 0")
    plan = db._plan_select(workload.sql(1), parse_statement(workload.sql(1)))
    strategy_off = plan.strategy
    qps_off, recall_off = measure_blendhouse(db, workload)
    db.execute("SET enable_cbo = 1")

    rows = [
        ["CBO enabled", strategy_on.value, qps_on, recall_on],
        ["CBO disabled", strategy_off.value, qps_off, recall_off],
    ]
    print(fmt_table(
        "Fig 15: hybrid '1% selectivity' QPS with/without CBO (simulated)",
        ["setting", "chosen strategy", "QPS", "recall"],
        rows,
    ))
    record(benchmark, "qps", {"cbo_on": qps_on, "cbo_off": qps_off})

    assert strategy_on is ExecutionStrategy.POST_FILTER
    assert strategy_off is ExecutionStrategy.PRE_FILTER
    assert qps_on > qps_off, "CBO's strategy choice must pay off"
    assert recall_on > 0.9 and recall_off > 0.9

    benchmark(lambda: db.execute(workload.sql(0)))
