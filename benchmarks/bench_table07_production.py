"""Table VII — production image-search workload: latency, recall, speedup.

Paper (top-1000, 1000 queries, latency at ~0.99 recall):

================== ======= ======== ========
system              recall  latency  speedup
================== ======= ======== ========
Milvus              0.992   0.181 s  1x
Milvus-Partition    0.991   0.076 s  2.38x
ByteHouse           0.994   0.078 s  2.32x
ByteHouse-Partition 0.997   0.043 s  4.21x
pgvector            < 0.35  —        —
================== ======= ======== ========

Shapes: BlendHouse beats Milvus without partitioning; partitioning helps
both; BlendHouse-Partition is the overall winner; pgvector's recall
collapses on the multi-predicate filter.  We run a scaled trace
(multi-predicate: category + day + score) at top-50.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from benchmarks.conftest import HNSW_OPTIONS, HNSW_PARAMS
from repro.baselines import MilvusLike, PgVectorLike
from repro.core.database import BlendHouse
from repro.workloads.recall import ground_truth, recall_at_k
from repro.workloads.vectorbench import qps_from_latencies

K = 50
N_QUERIES = 25
# Scaled production trace: large enough that qualifying-row counts stay
# above Milvus's brute-force switch, as in the paper's 30M-row setting.
PROD_N = 12_000
PROD_DIM = 32


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


def _query_specs(production_ds, seed=5):
    """Per-query (category, min day, score threshold) predicates + masks.

    The day bound is weak (>= first day) so the qualifying-row count is
    governed by category x score: around 10-15% of the table, matching
    the regime where the paper's systems use their indexes rather than
    the small-result brute-force switch.
    """
    rng = np.random.default_rng(seed)
    categories = production_ds.scalars["category"]
    days = np.asarray(production_ds.scalars["day"])
    scores = np.asarray(production_ds.scalars["score"])
    cat_values = sorted(set(categories))
    cat_array = np.array(categories)
    min_day = int(days.min())
    specs, masks = [], []
    for _ in range(N_QUERIES):
        category = cat_values[int(rng.integers(len(cat_values)))]
        threshold = float(rng.uniform(0.2, 0.4))
        specs.append((category, min_day, threshold))
        masks.append((cat_array == category) & (days >= min_day) & (scores >= threshold))
    return specs, masks


@pytest.fixture(scope="module")
def production_results():
    from repro.workloads.datasets import make_production_like

    production_ds = make_production_like(n=PROD_N, dim=PROD_DIM, n_queries=N_QUERIES)
    specs, masks = _query_specs(production_ds)
    truth = ground_truth(
        production_ds.vectors, production_ds.queries[:N_QUERIES], K, masks
    )

    def run_blendhouse(partitioned: bool):
        db = BlendHouse(cost_model=BENCH_COST)
        ddl_suffix = " PARTITION BY category" if partitioned else ""
        db.execute(
            f"CREATE TABLE prod (id UInt64, category String, day Int64, "
            f"score Float64, embedding Array(Float32), "
            f"INDEX ann embedding TYPE HNSW('DIM={production_ds.dim}', "
            f"'{HNSW_OPTIONS}')){ddl_suffix}"
        )
        db.table("prod").writer.config.max_segment_rows = 1500
        db.insert_columns(
            "prod",
            {name: production_ds.scalars[name]
             for name in ("id", "category", "day", "score")},
            production_ds.vectors,
        )
        db.execute("SET ef_search = 128")
        latencies, results = [], []
        for warm in (True, False):
            latencies, results = [], []
            for qi, (category, day, threshold) in enumerate(specs):
                sql = (
                    f"SELECT id FROM prod WHERE category = '{category}' "
                    f"AND day >= {day} AND score >= {threshold:.4f} "
                    f"ORDER BY L2Distance(embedding, "
                    f"{vector_sql(production_ds.queries[qi])}) LIMIT {K}"
                )
                start = db.clock.now
                out = db.execute(sql)
                latencies.append(db.clock.now - start)
                results.append([row[0] for row in out.rows])
        return latencies, results

    def run_baseline(cls, partitioned: bool, **search_params):
        system = cls(cost=BENCH_COST)
        system.load(
            production_ds.vectors, production_ds.scalars,
            index_type="HNSW", index_params=dict(HNSW_PARAMS),
            partition_column="category" if partitioned else None,
        )
        latencies, results = [], []
        for qi, (category, _, _) in enumerate(specs):
            start = system.clock.now
            ids, _dist = system.search(
                production_ds.queries[qi], K, mask=masks[qi],
                partition_filter={category} if partitioned else None,
                mask_eval_columns=3,  # category, day, score predicates
                **search_params,
            )
            latencies.append(system.clock.now - start)
            results.append(ids.tolist())
        return latencies, results

    out = {}
    for label, runner in (
        ("Milvus", lambda: run_baseline(MilvusLike, False, ef_search=128)),
        ("Milvus-Partition", lambda: run_baseline(MilvusLike, True, ef_search=128)),
        ("BlendHouse", lambda: run_blendhouse(False)),
        ("BlendHouse-Partition", lambda: run_blendhouse(True)),
        ("pgvector", lambda: run_baseline(PgVectorLike, False, ef_search=128)),
    ):
        latencies, results = runner()
        out[label] = {
            "latency": sum(latencies) / len(latencies),
            "recall": recall_at_k(results, truth, K),
            "qps": qps_from_latencies(latencies),
        }
    return out


PAPER = {
    "Milvus": (0.99221, 0.181, 1.0),
    "Milvus-Partition": (0.99109, 0.076, 2.38),
    "BlendHouse": (0.99417, 0.078, 2.32),
    "BlendHouse-Partition": (0.99665, 0.043, 4.21),
    "pgvector": (0.35, None, None),
}


def test_table07_production_workload(benchmark, production_results):
    base = production_results["Milvus"]["latency"]
    rows = []
    for label in PAPER:
        measured = production_results[label]
        paper_recall, paper_latency, paper_speedup = PAPER[label]
        rows.append([
            label,
            paper_recall,
            paper_speedup if paper_speedup else "-",
            measured["recall"],
            measured["latency"] * 1e3,
            base / measured["latency"],
        ])
    print(fmt_table(
        "Table VII: production workload (paper vs measured; latency sim ms)",
        ["system", "paper recall", "paper speedup",
         "recall", "latency (ms)", "speedup vs Milvus"],
        rows,
    ))
    record(benchmark, "results", {
        label: {"recall": v["recall"], "latency": v["latency"]}
        for label, v in production_results.items()
    })

    r = production_results
    # Accuracy shapes.
    for label in ("Milvus", "Milvus-Partition", "BlendHouse", "BlendHouse-Partition"):
        assert r[label]["recall"] > 0.9, label
    assert r["pgvector"]["recall"] < 0.5, "pgvector must collapse on multi-predicate"
    # Speed shapes: partitioning helps both systems; BlendHouse beats
    # Milvus in like-for-like configurations; BH-Partition is the winner.
    assert r["Milvus-Partition"]["latency"] < r["Milvus"]["latency"]
    assert r["BlendHouse-Partition"]["latency"] < r["BlendHouse"]["latency"]
    assert r["BlendHouse"]["latency"] < r["Milvus"]["latency"]
    best = min(
        ("Milvus", "Milvus-Partition", "BlendHouse", "BlendHouse-Partition"),
        key=lambda label: r[label]["latency"],
    )
    assert best == "BlendHouse-Partition"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
