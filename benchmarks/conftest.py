"""Session-scoped worlds shared by the benchmark files.

Building HNSW indexes dominates benchmark wall time, so datasets and
loaded systems are built once per pytest session and shared.  Benchmarks
must leave shared engines in a clean state (reset any SET overrides they
apply).
"""

from __future__ import annotations

import pytest

from benchmarks.common import load_blendhouse
from repro.baselines import MilvusLike, PgVectorLike
from repro.workloads.datasets import (
    make_cohere_like,
    make_laion_like,
    make_openai_like,
    make_production_like,
)

HNSW_PARAMS = {"m": 8, "ef_construction": 64}
HNSW_OPTIONS = "M=8, ef_construction=64"


@pytest.fixture(scope="session")
def cohere_ds():
    return make_cohere_like(n=3000, dim=32, n_queries=40)


@pytest.fixture(scope="session")
def openai_ds():
    return make_openai_like(n=4000, dim=48, n_queries=30)


@pytest.fixture(scope="session")
def laion_ds():
    return make_laion_like(n=2500, dim=32, n_queries=30)


@pytest.fixture(scope="session")
def production_ds():
    return make_production_like(n=3000, dim=32, n_queries=30)


@pytest.fixture(scope="session")
def bh_cohere(cohere_ds):
    """BlendHouse with the Cohere-like dataset under an HNSW index."""
    return load_blendhouse(cohere_ds, index_type="HNSW", index_options=HNSW_OPTIONS)


@pytest.fixture(scope="session")
def milvus_cohere(cohere_ds):
    system = MilvusLike()
    system.load(
        cohere_ds.vectors, cohere_ds.scalars,
        index_type="HNSW", index_params=dict(HNSW_PARAMS),
    )
    return system


@pytest.fixture(scope="session")
def pgvector_cohere(cohere_ds):
    system = PgVectorLike()
    system.load(
        cohere_ds.vectors, cohere_ds.scalars,
        index_type="HNSW", index_params=dict(HNSW_PARAMS),
    )
    return system


@pytest.fixture
def reset_settings(bh_cohere):
    """Restore the shared engine's settings after a bench mutates them."""
    yield bh_cohere
    from repro.core.database import EngineSettings

    bh_cohere.settings = EngineSettings()
