"""Fig 14 — the impact of updates and compaction on performance.

Paper: with compaction disabled, vector search QPS degrades as the
number of updated rows grows (queries combine the latest values through
delete bitmaps and extra version segments); enabling compaction cleans
the dead rows and restores QPS to normal.  We update growing row counts
and measure QPS before updates, after updates, and after compaction.
"""

import pytest

from benchmarks.common import (
    fmt_table,
    load_blendhouse,
    measure_blendhouse,
    record,
)
from benchmarks.conftest import HNSW_OPTIONS
from repro.workloads.vectorbench import make_hybrid_workload

UPDATE_COUNTS = [100, 400, 800]


@pytest.fixture(scope="module")
def results(cohere_ds):
    workload = make_hybrid_workload(cohere_ds, k=10)
    out = {"baseline": None, "after_update": {}, "after_compaction": {}}

    db = load_blendhouse(cohere_ds, index_type="HNSW", index_options=HNSW_OPTIONS)
    db.execute(workload.sql(0))  # warmup
    out["baseline"], _ = measure_blendhouse(db, workload)

    updated_so_far = 0
    for count in UPDATE_COUNTS:
        # Update rows [updated_so_far, count): compaction disabled.
        db.execute(
            f"UPDATE bench SET attr = attr + 0 "
            f"WHERE id >= {updated_so_far} AND id < {count}"
        )
        updated_so_far = count
        qps, recall = measure_blendhouse(db, workload)
        out["after_update"][count] = (qps, recall,
                                      db.table("bench").manager.deleted_rows(),
                                      len(db.table("bench").manager))
    # Now compact and re-measure.
    db.compact("bench")
    db.execute(workload.sql(0))  # re-warm caches for the new segments
    qps, recall = measure_blendhouse(db, workload)
    out["after_compaction"] = (qps, recall,
                               db.table("bench").manager.deleted_rows(),
                               len(db.table("bench").manager))
    return out


def test_fig14_update_and_compaction(benchmark, results):
    rows = [["baseline (no updates)", results["baseline"], "-", "-", "-"]]
    for count in UPDATE_COUNTS:
        qps, recall, dead, segments = results["after_update"][count]
        rows.append([f"after {count} updated rows", qps, recall, dead, segments])
    qps, recall, dead, segments = results["after_compaction"]
    rows.append(["after compaction", qps, recall, dead, segments])
    print(fmt_table(
        "Fig 14: update overhead and compaction recovery (simulated QPS)",
        ["state", "QPS", "recall", "dead rows", "segments"],
        rows,
    ))
    record(benchmark, "qps", {
        "baseline": results["baseline"],
        "after_800_updates": results["after_update"][800][0],
        "after_compaction": results["after_compaction"][0],
    })

    # Shapes: QPS decreases as updates accumulate; compaction restores it.
    degraded = [results["after_update"][c][0] for c in UPDATE_COUNTS]
    assert all(degraded[i] >= degraded[i + 1] for i in range(len(degraded) - 1)), (
        "more updated rows must hurt QPS monotonically"
    )
    assert degraded[-1] < 0.9 * results["baseline"]
    assert results["after_compaction"][0] > 1.2 * degraded[-1]
    assert results["after_compaction"][2] == 0, "compaction must drop dead rows"
    # Correctness is never sacrificed while degraded.
    assert all(results["after_update"][c][1] > 0.9 for c in UPDATE_COUNTS)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
