"""Table I — feature matrix: BlendHouse's capability row, introspected.

The paper's Table I compares vector databases along seven capabilities.
This bench asserts that the reproduction actually provides every feature
the paper claims for BlendHouse and prints the row.
"""

from benchmarks.common import fmt_table, record
from repro.core.database import BlendHouse

PAPER_ROW = {
    "general_purpose": True,
    "disaggregated_architecture": True,
    "full_sql_support": True,
    "filtered_search": True,
    "iterative_search": True,
    "similarity_based_partition": True,
    "auto_index": True,
}


def test_table01_feature_matrix(benchmark):
    features = benchmark.pedantic(BlendHouse.feature_matrix, rounds=1, iterations=1)
    rows = []
    for key, expected in PAPER_ROW.items():
        measured = features[key]
        rows.append([key, "yes" if expected else "no", "yes" if measured else "no"])
        assert measured == expected, f"capability {key} regressed"
    rows.append(["index_algorithms", "Pluggable (IVF, HNSW)",
                 ",".join(features["index_algorithms"])])
    print(fmt_table("Table I: BlendHouse capability row", ["capability", "paper", "repro"], rows))
    record(benchmark, "capabilities", {k: bool(v) for k, v in PAPER_ROW.items()})
    assert {"HNSW", "IVFFLAT", "IVFPQ", "HNSWSQ", "DISKANN"} <= set(
        features["index_algorithms"]
    )
