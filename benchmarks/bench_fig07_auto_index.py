"""Fig 7 — IVF search time as a function of N for different K_IVF.

The paper's motivation for auto-index: with nprobe fixed, small K_IVF
wins at small N (few centroids to rank) but loses at large N (huge
posting lists per probe); the optimal K grows like sqrt(N).  We sweep
K_IVF over three settings and N over three sizes, timing real searches
(wall clock — this is a pure-algorithm experiment), and check the
crossover plus that the rule-based auto selection lands near the
measured optimum at the largest N.
"""

import time

import numpy as np
import pytest

from benchmarks.common import fmt_table, record
from repro.vindex.autoindex import select_ivf_nlist
from repro.vindex.registry import IndexSpec, create_index

K_SETTINGS = [8, 32, 128]
N_SETTINGS = [1000, 4000, 16000]
NPROBE = 4
N_QUERIES = 30
DIM = 32


def _build(data: np.ndarray, nlist: int):
    index = create_index(IndexSpec(index_type="IVFFLAT", dim=DIM, params={"nlist": nlist}))
    index.train(data)
    index.add_with_ids(data, np.arange(data.shape[0]))
    return index


def _search_time(index, queries) -> float:
    start = time.perf_counter()
    for query in queries:
        index.search_with_filter(query, 10, nprobe=NPROBE)
    return (time.perf_counter() - start) / len(queries)


@pytest.fixture(scope="module")
def timing_table():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(max(N_SETTINGS), DIM)).astype(np.float32)
    queries = rng.normal(size=(N_QUERIES, DIM)).astype(np.float32)
    table = {}
    for n in N_SETTINGS:
        subset = data[:n]
        for k in K_SETTINGS:
            index = _build(subset, k)
            table[(n, k)] = _search_time(index, queries)
    return table


def test_fig07_search_time_vs_n(benchmark, timing_table):
    rows = []
    for n in N_SETTINGS:
        row = [n] + [timing_table[(n, k)] * 1e3 for k in K_SETTINGS]
        best_k = min(K_SETTINGS, key=lambda k: timing_table[(n, k)])
        row.append(best_k)
        row.append(select_ivf_nlist(n))
        rows.append(row)
    print(fmt_table(
        "Fig 7: IVF search ms/query vs N (nprobe fixed)",
        ["N"] + [f"K={k}" for k in K_SETTINGS] + ["best K", "auto K"],
        rows,
    ))
    # Shape assertions: the optimal K grows with N.
    best_small = min(K_SETTINGS, key=lambda k: timing_table[(N_SETTINGS[0], k)])
    best_large = min(K_SETTINGS, key=lambda k: timing_table[(N_SETTINGS[-1], k)])
    assert best_large >= best_small
    # At the largest N the tiny-K setting must be clearly suboptimal.
    assert timing_table[(N_SETTINGS[-1], K_SETTINGS[0])] > timing_table[
        (N_SETTINGS[-1], best_large)
    ]
    record(benchmark, "best_k_by_n",
           {n: min(K_SETTINGS, key=lambda k: timing_table[(n, k)]) for n in N_SETTINGS})

    # Wall-clock benchmark target: one search at the auto-chosen K.
    rng = np.random.default_rng(1)
    data = rng.normal(size=(4000, DIM)).astype(np.float32)
    index = _build(data, select_ivf_nlist(4000))
    query = data[0]
    benchmark(lambda: index.search_with_filter(query, 10, nprobe=NPROBE))
