"""Elastic fleet — cold-cache masking through a mid-workload scale-out.

A 200k+-row table is streamed into a two-warehouse fleet, a steady
interactive workload runs across many tenants, and one warehouse is
added *mid-workload*.  Three join protocols are measured through the
scale event (interactive p99, per-window cache hit-rate, result bytes):

* ``masked``   — the background preloader warms the joining warehouse
  from fleet-wide access stats; the router admits it only after the
  warm-up's simulated cost has elapsed.  The paper's claim: the scale
  event is invisible to foreground p99.
* ``unmasked`` — the joining warehouse enters the ring cold.  Index
  fetches are backgrounded (they never block a query), so every tenant
  rerouted to the cold member is served by exact brute-force scans —
  all rows at scalar flop rates instead of an HNSW walk over ``ef``
  candidates at vectorized rates.  That compute gap is the cliff.
* ``unmasked_shared`` — cold join with the shared (disaggregated) block
  cache enabled: misses resolve at RPC cost against blocks peers
  already promoted.  The fleet hit-rate recovers, but the promotion
  spike (pulling whole indexes over RPC) still lands on the query
  path — the shared tier blunts *sustained* degradation, not p99.

Gates (also enforced by the CI ``elasticity-smoke`` job): masked keeps
during-scale p99 within 25% of steady state; unmasked degrades ≥ 2×;
results are byte-identical per tenant before/during/after in every
variant (``EF_SEARCH`` is sized so per-segment HNSW recall is exactly
1.0, making warm graph walks and cold brute scans return the same
bytes).  Emits ``BENCH_elasticity.json``.
"""

import pytest

from benchmarks.common import (
    BENCH_COST,
    BENCH_SMOKE,
    fmt_table,
    record,
    smoke_scaled,
    write_bench_json,
)
from repro.elastic import FleetBlendHouse, FleetConfig
from repro.simulate.metrics import percentile
from repro.workloads.datasets import make_cohere_like

ROWS = smoke_scaled(200_000, 12_000)
DIM = 64
SEGMENT_ROWS = smoke_scaled(4_000, 1_000)
INGEST_CHUNK = smoke_scaled(10_000, 3_000)
TENANTS = 12
ROUNDS_PER_WINDOW = 3  # each tenant queries this many times per window
SHARED_CACHE_BYTES = 512 << 20
# Beam width sized so the merged top-10 is exact on this dataset
# (verified against brute force per segment): byte-identity is a gate,
# so the approximate index must be tuned until the global result set
# matches the exact kernel bit for bit.
EF_SEARCH = smoke_scaled(600, 300)

MASKED_P99_HEADROOM = 1.25  # within 25% of steady state
UNMASKED_P99_FLOOR = 2.0  # the cliff the masking removes


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


def _build_fleet(dataset, shared_cache_bytes):
    db = FleetBlendHouse(
        cost_model=BENCH_COST,
        fleet_config=FleetConfig(
            warehouses=2,
            workers_per_warehouse=2,
            shared_cache_bytes=shared_cache_bytes,
        ),
    )
    db.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE HNSW('DIM={DIM}', 'M=8, ef_construction=64'))"
    )
    db.execute(f"SET ef_search = {EF_SEARCH}")
    db.db.table("bench").writer.config.max_segment_rows = SEGMENT_ROWS
    # Streamed ingest: fixed-size chunks arriving over time, the way the
    # serving tier sees continuous writes — not one bulk load.
    for lo in range(0, ROWS, INGEST_CHUNK):
        hi = min(lo + INGEST_CHUNK, ROWS)
        db.insert_columns(
            "bench",
            {
                "id": dataset.scalars["id"][lo:hi],
                "attr": dataset.scalars["attr"][lo:hi],
            },
            dataset.vectors[lo:hi],
        )
    db.preload("bench")  # both initial members start warm (steady state)
    return db


def _tenant_sqls(dataset):
    return {
        f"tenant-{i}": (
            f"SELECT id, dist FROM bench ORDER BY L2Distance(embedding, "
            f"{vector_sql(dataset.queries[i % len(dataset.queries)])}) "
            f"AS dist LIMIT 10"
        )
        for i in range(TENANTS)
    }


def _run_window(db, sqls, rounds=ROUNDS_PER_WINDOW):
    """One measurement window: every tenant queries ``rounds`` times.

    Returns (p99 latency, window cache hit-rate, per-tenant result ids).
    """
    stats = db.fleet.access_stats()
    hits0, misses0 = stats.total_hits, stats.total_misses
    latencies = []
    results = {}
    for _ in range(rounds):
        for tenant, sql in sqls.items():
            start = db.clock.now
            result = db.execute(sql, tenant=tenant, lane="interactive")
            latencies.append(db.clock.now - start)
            results[tenant] = tuple(row[0] for row in result.rows)
    stats = db.fleet.access_stats()
    hits, misses = stats.total_hits - hits0, stats.total_misses - misses0
    hit_rate = hits / (hits + misses) if hits + misses else 1.0
    return percentile(sorted(latencies), 99.0), hit_rate, results


def _run_variant(dataset, masked, shared_cache_bytes):
    db = _build_fleet(dataset, shared_cache_bytes)
    sqls = _tenant_sqls(dataset)
    _run_window(db, sqls)  # warm-up: plans cached, caches settled
    steady_p99, steady_hit, steady_results = _run_window(db, sqls)

    scale_at = db.clock.now
    joined = db.scale_out(masked=masked)
    warm_cost_s = max(0.0, db.fleet.pending.get(joined, scale_at) - scale_at)
    during_p99, during_hit, during_results = _run_window(db, sqls)

    admitted_during_workload = joined in db.fleet.router
    ready_at = db.fleet.pending.get(joined)
    if ready_at is not None:
        # The workload went quiet before the warm-up finished; idle out
        # the remainder on the simulated clock.
        db.clock.advance(max(0.0, ready_at - db.clock.now) + 1e-9)
        db.fleet.poll()
    after_p99, after_hit, after_results = _run_window(db, sqls)

    assert joined in db.fleet.router
    identical = steady_results == during_results == after_results
    return {
        "joined": joined,
        "masked": masked,
        "shared_cache": shared_cache_bytes > 0,
        "warm_cost_s": warm_cost_s,
        "admitted_during_workload": admitted_during_workload,
        "joined_served_queries": db.metrics.count(f"fleet.served_by.{joined}"),
        "steady_p99_s": steady_p99,
        "during_p99_s": during_p99,
        "after_p99_s": after_p99,
        "during_over_steady": during_p99 / steady_p99,
        "after_over_steady": after_p99 / steady_p99,
        "hit_rate": {
            "steady": steady_hit, "during": during_hit, "after": after_hit,
        },
        "results_identical": identical,
        "_results": steady_results,
    }


@pytest.fixture(scope="module")
def elasticity():
    dataset = make_cohere_like(n=ROWS, dim=DIM, n_queries=TENANTS, seed=33)
    variants = {
        "masked": _run_variant(dataset, True, SHARED_CACHE_BYTES),
        "unmasked": _run_variant(dataset, False, 0),
        "unmasked_shared": _run_variant(dataset, False, SHARED_CACHE_BYTES),
    }
    # Same bytes regardless of join protocol or cache topology.
    reference = variants["masked"].pop("_results")
    for name, variant in list(variants.items()):
        rows = variant.pop("_results", reference)
        assert rows == reference, f"{name} returned different rows"
    payload = {
        "rows": ROWS,
        "dim": DIM,
        "segment_rows": SEGMENT_ROWS,
        "tenants": TENANTS,
        "queries_per_window": TENANTS * ROUNDS_PER_WINDOW,
        "smoke": BENCH_SMOKE,
        "variants": variants,
        "gates": {
            "masked_within_25pct": (
                variants["masked"]["during_over_steady"] <= MASKED_P99_HEADROOM
            ),
            "unmasked_degrades_2x": (
                variants["unmasked"]["during_over_steady"] >= UNMASKED_P99_FLOOR
            ),
            "results_identical": all(
                v["results_identical"] for v in variants.values()
            ),
        },
    }
    write_bench_json("elasticity", payload)
    return payload


def test_elasticity_scale_event(benchmark, elasticity):
    variants = elasticity["variants"]
    print(fmt_table(
        "Elastic fleet: interactive p99 through a mid-workload scale-out",
        ["variant", "steady p99 (s)", "during p99 (s)", "after p99 (s)",
         "during/steady", "hit rate during"],
        [
            [
                name,
                v["steady_p99_s"],
                v["during_p99_s"],
                v["after_p99_s"],
                v["during_over_steady"],
                v["hit_rate"]["during"],
            ]
            for name, v in variants.items()
        ],
    ))
    record(benchmark, "elasticity", {
        name: {k: val for k, val in v.items() if not k.startswith("_")}
        for name, v in variants.items()
    })
    record(benchmark, "gates", elasticity["gates"])

    masked, unmasked = variants["masked"], variants["unmasked"]
    # Byte-identical service through every scale event.
    assert elasticity["gates"]["results_identical"]
    # The masked join is invisible to foreground p99...
    assert masked["during_over_steady"] <= MASKED_P99_HEADROOM, masked
    # ...while the cold join is a cliff the clients feel.
    assert unmasked["during_over_steady"] >= UNMASKED_P99_FLOOR, unmasked
    # The cliff is cold caches, not capacity: once warmed through the
    # query path, the unmasked member's window recovers.
    assert unmasked["after_over_steady"] <= MASKED_P99_HEADROOM * 1.2
    # The cold window tanks the fleet hit-rate; the masked one doesn't.
    assert unmasked["hit_rate"]["during"] < masked["hit_rate"]["during"]
    # The joining warehouse really serves traffic after admission.
    assert masked["joined_served_queries"] > 0
    # The shared tier restores the fleet hit-rate (misses resolve at
    # RPC against peer-promoted blocks) but the promotion spike still
    # lands on the query path: only masking removes the p99 cliff.
    shared = variants["unmasked_shared"]
    assert shared["hit_rate"]["during"] > unmasked["hit_rate"]["during"]
    assert shared["during_over_steady"] > MASKED_P99_HEADROOM
    assert shared["after_over_steady"] <= MASKED_P99_HEADROOM * 1.2

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
