"""Table VI — memory consumption of different index types.

Paper (GB, production dataset): BH-HNSW 596.0, BH-HNSWSQ 238.4
(≈ 0.4x), BH-IVFPQFS 91.2 (≈ 0.15x).  Shape: full-precision HNSW is the
largest; SQ8 cuts it roughly to the quantized-vector fraction; 4-bit PQ
codes are by far the smallest.  Measured sizes come from each index's
``memory_bytes`` accounting on the production-like dataset.
"""

import numpy as np
import pytest

from benchmarks.common import fmt_table, record
from repro.vindex.registry import IndexSpec, create_index

PAPER_GB = {"BH-HNSW": 596.0, "BH-HNSWSQ": 238.4, "BH-IVFPQFS": 91.2}
SPECS = {
    "BH-HNSW": ("HNSW", {"m": 8, "ef_construction": 64}),
    "BH-HNSWSQ": ("HNSWSQ", {"m": 8, "ef_construction": 64}),
    "BH-IVFPQFS": ("IVFPQFS", {"m": 8}),
}


@pytest.fixture(scope="module")
def memory(production_ds):
    vectors = production_ds.vectors
    ids = np.arange(vectors.shape[0])
    out = {}
    for label, (index_type, params) in SPECS.items():
        index = create_index(
            IndexSpec(index_type=index_type, dim=production_ds.dim, params=params)
        )
        index.train(vectors)
        index.add_with_ids(vectors, ids)
        out[label] = index.memory_bytes()
    return out


def test_table06_index_memory(benchmark, memory):
    hnsw = memory["BH-HNSW"]
    rows = []
    for label in SPECS:
        rows.append([
            label,
            PAPER_GB[label],
            PAPER_GB[label] / PAPER_GB["BH-HNSW"],
            memory[label] / (1 << 20),
            memory[label] / hnsw,
        ])
    print(fmt_table(
        "Table VI: index memory (paper GB vs measured MiB)",
        ["index", "paper (GB)", "paper (x HNSW)", "measured (MiB)", "measured (x HNSW)"],
        rows,
    ))
    record(benchmark, "bytes", memory)
    assert memory["BH-HNSW"] > memory["BH-HNSWSQ"] > memory["BH-IVFPQFS"]
    # Rough factor match: SQ should land near the paper's 0.4x, PQ well
    # below it.
    assert memory["BH-HNSWSQ"] / hnsw < 0.75
    assert memory["BH-IVFPQFS"] / hnsw < 0.35
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
