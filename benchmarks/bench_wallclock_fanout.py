"""Real wall-clock fan-out: thread executor vs the multiprocess scan plane.

Unlike every other bench in this directory, the headline number here is
**wall-clock** (``time.perf_counter``), not simulated seconds: the point
of the process pool is to escape the GIL, and only a wall clock can see
that.  An 8-segment HNSW scan is driven through the same SQL twice —
``executor_mode='thread'`` and ``executor_mode='process'`` against a
pre-warmed private pool — and must return byte-identical rows *and*
identical simulated seconds in both modes.

The ≥2x speedup claim only holds when there are physical cores to scan
on, so it is asserted only at full scale on a ≥4-core host; the JSON
artifact always records the measured speedup together with
``cpu_count`` so a 1-core CI run stays honest instead of vacuously
green.
"""

import gc
import os
import time

import pytest

from benchmarks.common import (
    BENCH_COST,
    BENCH_SMOKE,
    fmt_table,
    record,
    smoke_scaled,
    write_bench_json,
)
from repro.core.database import BlendHouse
from repro.executor.procpool import ProcessScanPool
from repro.storage.sharedblock import orphaned_shm_names
from repro.workloads.datasets import make_cohere_like

SEGMENTS = 8
ROWS_PER_SEGMENT = smoke_scaled(4000, 800)
DIM = 64
N_QUERIES = smoke_scaled(30, 10)
K = 10
POOL_WORKERS = smoke_scaled(8, 2)


def vector_sql(vector):
    return "[" + ",".join(repr(float(x)) for x in vector) + "]"


def knn_sql(query) -> str:
    return (
        f"SELECT id, dist FROM bench ORDER BY "
        f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {K}"
    )


def build_db() -> BlendHouse:
    dataset = make_cohere_like(
        n=SEGMENTS * ROWS_PER_SEGMENT, dim=DIM, n_queries=N_QUERIES, seed=11
    )
    db = BlendHouse(cost_model=BENCH_COST)
    db.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE HNSW('DIM={DIM}'))"
    )
    db.table("bench").writer.config.max_segment_rows = ROWS_PER_SEGMENT
    db.insert_columns(
        "bench",
        {"id": dataset.scalars["id"], "attr": dataset.scalars["attr"]},
        dataset.vectors,
    )
    db.execute(f"SET parallel_workers = {SEGMENTS}")
    db._bench_queries = dataset.queries
    return db


def run_wallclock(db, sqls):
    """(wall seconds, result rows, total simulated seconds), pre-warmed.

    The warm pass runs the *entire* workload once first: it fills plan
    and column caches, builds the per-segment indexes, and — in process
    mode — promotes every segment to shared memory and ships payloads
    and index bytes to each pool worker.  The timed pass then measures
    steady-state scanning, which is the claim under test.
    """
    for sql in sqls:
        db.execute(sql)
    rows = []
    simulated = 0.0
    start = time.perf_counter()
    for sql in sqls:
        out = db.execute(sql)
        rows.append(out.rows)
        simulated += out.simulated_seconds
    return time.perf_counter() - start, rows, simulated


@pytest.fixture(scope="module")
def wallclock_results():
    db = build_db()
    sqls = [knn_sql(q) for q in db._bench_queries[:N_QUERIES]]

    thread_wall, thread_rows, thread_sim = run_wallclock(db, sqls)

    pool = ProcessScanPool(workers=POOL_WORKERS, metrics=db.metrics)
    try:
        db._scan_pool_override = pool
        db.execute("SET executor_mode = 'process'")
        process_wall, process_rows, process_sim = run_wallclock(db, sqls)
    finally:
        db.execute("SET executor_mode = 'thread'")
        db._scan_pool_override = None
        pool.shutdown()
    del db
    gc.collect()

    return {
        "thread_wall": thread_wall,
        "process_wall": process_wall,
        "thread_rows": thread_rows,
        "process_rows": process_rows,
        "thread_sim": thread_sim,
        "process_sim": process_sim,
        "orphans": orphaned_shm_names(),
    }


def test_wallclock_fanout(benchmark, wallclock_results):
    r = wallclock_results
    speedup = r["thread_wall"] / r["process_wall"]
    cpu_count = os.cpu_count() or 1
    print(fmt_table(
        f"Wall-clock fan-out: {SEGMENTS}x{ROWS_PER_SEGMENT} rows, "
        f"{N_QUERIES} HNSW queries ({cpu_count} cores)",
        ["mode", "wall_s", "per_query_ms", "simulated_s"],
        [
            ["thread", r["thread_wall"],
             1000 * r["thread_wall"] / N_QUERIES, r["thread_sim"]],
            [f"process x{POOL_WORKERS}", r["process_wall"],
             1000 * r["process_wall"] / N_QUERIES, r["process_sim"]],
        ],
    ))
    record(benchmark, "thread_wall_s", r["thread_wall"])
    record(benchmark, "process_wall_s", r["process_wall"])
    record(benchmark, "speedup", speedup)
    record(benchmark, "cpu_count", cpu_count)
    write_bench_json("wallclock_fanout", {
        "thread_wall_s": r["thread_wall"],
        "process_wall_s": r["process_wall"],
        "speedup": speedup,
        "cpu_count": cpu_count,
        "pool_workers": POOL_WORKERS,
        "segments": SEGMENTS,
        "rows_per_segment": ROWS_PER_SEGMENT,
        "dim": DIM,
        "n_queries": N_QUERIES,
        "smoke": BENCH_SMOKE,
        "thread_simulated_s": r["thread_sim"],
        "process_simulated_s": r["process_sim"],
    })

    # Correctness is unconditional: same rows, same simulated time.
    assert r["process_rows"] == r["thread_rows"]
    assert r["process_sim"] == pytest.approx(r["thread_sim"], rel=1e-9)
    # And the pool left nothing behind in /dev/shm.
    assert r["orphans"] == []

    # The speedup claim needs physical parallelism to exist: a 1-core
    # container cannot scan 8 segments concurrently no matter how many
    # processes it forks, and the smoke workload is too small to
    # amortize IPC.  The artifact above records the honest number.
    if not BENCH_SMOKE and cpu_count >= 4:
        assert speedup >= 2.0, (
            f"process fan-out only {speedup:.2f}x on {cpu_count} cores"
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
