"""Fig 12 — read/write interference: isolated vs mixed virtual warehouses.

Paper: co-locating the write workload with vector search on one VW drops
read QPS as write concurrency rises; dedicated VWs (read-write
separation over the disaggregated architecture) eliminate the
interference entirely.  We sweep write concurrency 0..8 against a
warehouse of 8-core-equivalent capacity and measure read QPS in both
placements.
"""

import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from benchmarks.conftest import HNSW_OPTIONS
from repro.cluster.engine import ClusteredBlendHouse
from repro.workloads.vectorbench import make_hybrid_workload, qps_from_latencies

WRITE_CONCURRENCY = [0, 1, 2, 4, 8]
VW_CORES = 10  # capacity units per warehouse


@pytest.fixture(scope="module")
def cluster(cohere_ds):
    engine = ClusteredBlendHouse(read_workers=2, cost_model=BENCH_COST)
    engine.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE HNSW('DIM={cohere_ds.dim}', '{HNSW_OPTIONS}'))"
    )
    engine.db.table("bench").writer.config.max_segment_rows = 1500
    engine.insert_columns(
        "bench",
        {"id": cohere_ds.scalars["id"], "attr": cohere_ds.scalars["attr"]},
        cohere_ds.vectors,
    )
    engine.preload("bench")
    return engine


def _read_qps(cluster, workload, background_load):
    cluster.read_vw.background_load = background_load
    latencies = []
    for qi in range(len(workload.queries)):
        start = cluster.clock.now
        cluster.execute(workload.sql(qi))
        latencies.append(cluster.clock.now - start)
    cluster.read_vw.background_load = 0.0
    return qps_from_latencies(latencies)


def test_fig12_mixed_workload_interference(benchmark, cluster, cohere_ds):
    workload = make_hybrid_workload(cohere_ds, k=10, pass_fraction=0.99)
    # Warmup caches so the sweep is steady state.
    _read_qps(cluster, workload, 0.0)

    rows = []
    series = {"mixed": [], "isolated": []}
    for writers in WRITE_CONCURRENCY:
        mixed_load = min(0.9, writers / VW_CORES)
        mixed = _read_qps(cluster, workload, mixed_load)
        isolated = _read_qps(cluster, workload, 0.0)  # dedicated write VW
        rows.append([writers, isolated, mixed])
        series["mixed"].append(mixed)
        series["isolated"].append(isolated)
    print(fmt_table(
        "Fig 12: read QPS vs write concurrency (simulated)",
        ["writers", "isolated VWs QPS", "mixed VW QPS"],
        rows,
    ))
    record(benchmark, "series", series)

    # Shapes: mixed QPS decreases monotonically with write concurrency;
    # isolated QPS is flat; at high concurrency the gap is substantial.
    mixed = series["mixed"]
    assert all(mixed[i] >= mixed[i + 1] * 0.999 for i in range(len(mixed) - 1))
    isolated = series["isolated"]
    assert max(isolated) < 1.15 * min(isolated)
    # The interference multiplier only inflates the scan compute share,
    # which the vectorized kernels shrank relative to the fixed planning
    # overhead — so the QPS gap is narrower than pre-kernel-pass (the
    # absolute per-query interference cost is unchanged).
    assert isolated[-1] > 1.2 * mixed[-1]

    benchmark(lambda: cluster.execute(workload.sql(0)))
