"""Ablation — multi-probe consistent hashing vs naive modulo placement.

Not a paper figure: this isolates the design choice behind §II-D
("scaling-friendly segment allocation").  Two claims are measured:

* **stability** — adding one worker to n moves ≈ 1/(n+1) of segments
  under consistent hashing, vs ≈ n/(n+1) under ``hash(key) % n``;
* **balance** — multi-probe keeps per-worker load close to uniform with
  a single ring point per worker.
"""

import hashlib


from benchmarks.common import fmt_table, record
from repro.cluster.hashring import MultiProbeHashRing

N_SEGMENTS = 600
WORKER_COUNTS = [4, 8, 16]


def _segment_ids():
    return [f"t/seg-{i:05d}" for i in range(N_SEGMENTS)]


def _mod_assign(keys, workers):
    out = {}
    for key in keys:
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        out[key] = workers[int.from_bytes(digest, "big") % len(workers)]
    return out


def _ring_assign(keys, workers):
    ring = MultiProbeHashRing()
    for worker in workers:
        ring.add_worker(worker)
    return ring.assignment(keys)


def _moved_fraction(assign_fn, n_workers):
    keys = _segment_ids()
    workers = [f"w{i}" for i in range(n_workers)]
    before = assign_fn(keys, workers)
    after = assign_fn(keys, workers + [f"w{n_workers}"])
    moved = sum(1 for key in keys if before[key] != after[key])
    return moved / len(keys)


def _imbalance(assign_fn, n_workers):
    keys = _segment_ids()
    workers = [f"w{i}" for i in range(n_workers)]
    assignment = assign_fn(keys, workers)
    counts = {worker: 0 for worker in workers}
    for worker in assignment.values():
        counts[worker] += 1
    mean = len(keys) / n_workers
    return max(counts.values()) / mean


def test_ablation_consistent_hashing(benchmark):
    rows = []
    results = {}
    for n in WORKER_COUNTS:
        ring_moved = _moved_fraction(_ring_assign, n)
        mod_moved = _moved_fraction(_mod_assign, n)
        ring_balance = _imbalance(_ring_assign, n)
        ideal = 1.0 / (n + 1)
        rows.append([n, ideal, ring_moved, mod_moved, ring_balance])
        results[n] = (ring_moved, mod_moved)
    print(fmt_table(
        "Ablation: segments moved when scaling n -> n+1 workers",
        ["workers n", "ideal 1/(n+1)", "multi-probe CH", "hash % n",
         "CH max/mean load"],
        rows,
    ))
    record(benchmark, "moved", {str(n): v for n, v in results.items()})

    for n in WORKER_COUNTS:
        ring_moved, mod_moved = results[n]
        ideal = 1.0 / (n + 1)
        # Consistent hashing stays in the neighbourhood of the ideal...
        assert ring_moved < 2.5 * ideal, f"n={n}"
        # ...while modulo reshuffles almost everything.
        assert mod_moved > 0.7, f"n={n}"
        assert ring_moved < mod_moved / 3, f"n={n}"
        # Balance within 2.5x of uniform with one ring point per worker.
        assert _imbalance(_ring_assign, n) < 2.5

    ring = MultiProbeHashRing()
    for i in range(8):
        ring.add_worker(f"w{i}")
    benchmark(lambda: ring.assign("t/seg-00042"))
