"""Cold-restart recovery time vs WAL tail length and checkpoint recency.

Durability's operational question: how long does a replacement node take
to come back, and how much of that is governed by how recently the
engine checkpointed?  Recovery = load checkpoint (manifest + cold
segment reads) + replay the WAL tail (cold-read every segment committed
since).  Sweeping the checkpoint position through a fixed ingest history
shows recovery time growing with the tail and the checkpoint itself
amortizing it — the reason the WAL-bytes trigger exists.

Simulated seconds throughout (the engine charges every object-store read
and WAL operation to its clock).  Emits ``BENCH_recovery.json``.
"""

import numpy as np
import pytest

from benchmarks.common import (
    BENCH_COST,
    fmt_table,
    record,
    smoke_scaled,
    write_bench_json,
)
from repro.core.database import BlendHouse

DIM = 16


def _build_history(n_batches, rows_per_batch, checkpoint_after):
    """One engine that ingested ``n_batches`` and checkpointed midway."""
    rng = np.random.default_rng(42)
    db = BlendHouse(cost_model=BENCH_COST)
    db.execute(
        "CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE FLAT('DIM={DIM}'))"
    )
    next_id = 0
    for batch in range(n_batches):
        rows = [
            {"id": next_id + i, "attr": int(rng.integers(0, 100)),
             "embedding": rng.normal(size=DIM).astype(np.float32)}
            for i in range(rows_per_batch)
        ]
        next_id += rows_per_batch
        db.insert_rows("bench", rows)
        if batch + 1 == checkpoint_after:
            db.execute("CHECKPOINT")
        if batch % 3 == 2:
            db.execute(f"DELETE FROM bench WHERE id = {next_id - 5}")
    return db


@pytest.fixture(scope="module")
def recovery_results():
    n_batches = smoke_scaled(12, 6)
    rows_per_batch = smoke_scaled(200, 80)
    points = []
    for checkpoint_after in (0, n_batches // 4, n_batches // 2, n_batches):
        db = _build_history(n_batches, rows_per_batch, checkpoint_after)
        status = db.durability_status()
        recovered = db.restart()
        report = recovered.last_recovery
        points.append({
            "checkpoint_after_batch": checkpoint_after,
            "wal_tail_records": report.replayed_records,
            "wal_lsn_at_crash": status["last_flushed_lsn"],
            "checkpoint_lsn": report.checkpoint_lsn,
            "segments_loaded": report.segments_loaded,
            "recovery_sim_s": report.simulated_seconds,
        })
        # Sanity: the recovered engine answers queries.
        assert recovered.describe("bench")["rows_alive"] > 0
    return {"n_batches": n_batches, "rows_per_batch": rows_per_batch,
            "points": points}


def test_recovery_vs_checkpoint_recency(benchmark, recovery_results):
    points = recovery_results["points"]
    rows = [
        [p["checkpoint_after_batch"], p["checkpoint_lsn"],
         p["wal_tail_records"], p["segments_loaded"],
         p["recovery_sim_s"] * 1e3]
        for p in points
    ]
    print(fmt_table(
        "Cold-restart recovery vs checkpoint recency "
        f"({recovery_results['n_batches']} batches x "
        f"{recovery_results['rows_per_batch']} rows)",
        ["ckpt after batch", "ckpt lsn", "replayed records",
         "segments loaded", "recovery (sim ms)"],
        rows,
    ))
    record(benchmark, "recovery_sim_ms",
           {str(p["checkpoint_after_batch"]): p["recovery_sim_s"] * 1e3
            for p in points})
    write_bench_json("recovery", recovery_results)

    by_ckpt = {p["checkpoint_after_batch"]: p for p in points}
    never = by_ckpt[0]
    fresh = by_ckpt[recovery_results["n_batches"]]
    # A longer surviving WAL tail means more replay work...
    assert never["wal_tail_records"] > fresh["wal_tail_records"]
    # ...and a just-taken checkpoint gives the fastest restart.
    assert fresh["recovery_sim_s"] <= min(
        p["recovery_sim_s"] for p in points
    ) * 1.001
    # Recovery time decreases monotonically with checkpoint recency.
    ordered = sorted(points, key=lambda p: p["checkpoint_after_batch"])
    times = [p["recovery_sim_s"] for p in ordered]
    assert all(a >= b * 0.999 for a, b in zip(times, times[1:]))

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
