"""Fig 9 — QPS at high recall: BlendHouse vs Milvus vs pgvector.

Paper shapes to reproduce (HNSW, recall@0.99):

* pure vector search: BlendHouse > pgvector > Milvus (leaner executors);
* hybrid "1% selectivity" (≈99% of rows pass): BlendHouse and pgvector
  pick post-filter and stay fast; Milvus pre-filters and pays;
* hybrid "99% selectivity" (≈1% pass): BlendHouse and Milvus switch to
  brute force and are fast *and* accurate, while pgvector's
  non-iterative post-filter collapses below 10% recall.

QPS is simulated; the recall target is 0.95 at repro scale (0.99 needs
deeper beams than the scaled datasets justify).
"""

import pytest

from benchmarks.common import (
    best_at_recall,
    fmt_table,
    record,
    sweep_baseline,
    sweep_blendhouse,
)
from repro.workloads.vectorbench import make_hybrid_workload

EF_SWEEP = [32, 64, 128, 256]
TARGET_RECALL = 0.95


@pytest.fixture(scope="module")
def workloads(cohere_ds):
    return {
        "vector search": make_hybrid_workload(cohere_ds, k=10),
        "hybrid 1% sel": make_hybrid_workload(cohere_ds, k=10, pass_fraction=0.99),
        "hybrid 99% sel": make_hybrid_workload(cohere_ds, k=10, pass_fraction=0.01),
    }


@pytest.fixture(scope="module")
def results(workloads, bh_cohere, milvus_cohere, pgvector_cohere):
    out = {}
    for label, workload in workloads.items():
        row = {}
        points = sweep_blendhouse(bh_cohere, workload, EF_SWEEP)
        bh_cohere.execute("SET ef_search = 64")
        best, fallback = best_at_recall(points, TARGET_RECALL)
        row["BlendHouse"] = best or fallback
        for name, system in (
            ("Milvus", milvus_cohere),
            ("pgvector", pgvector_cohere),
        ):
            points = sweep_baseline(system, workload, EF_SWEEP)
            best, fallback = best_at_recall(points, TARGET_RECALL)
            row[name] = best or fallback
        out[label] = row
    return out


def test_fig09_qps_comparison(benchmark, results, workloads, bh_cohere):
    rows = []
    for label in workloads:
        for system in ("BlendHouse", "Milvus", "pgvector"):
            point = results[label][system]
            rows.append([label, system, point.qps, point.recall])
    print(fmt_table(
        f"Fig 9: QPS at recall>={TARGET_RECALL} (simulated)",
        ["workload", "system", "QPS", "recall"],
        rows,
    ))
    record(benchmark, "qps", {
        label: {sys: results[label][sys].qps for sys in results[label]}
        for label in results
    })

    # Shape 1: pure vector search — BlendHouse & pgvector beat Milvus.
    pure = results["vector search"]
    assert pure["BlendHouse"].qps > pure["Milvus"].qps
    assert pure["pgvector"].qps > pure["Milvus"].qps
    # Shape 2: BlendHouse wins every workload (paper: "performs best for
    # all workloads in VectorBench").
    for label in workloads:
        best_system = max(results[label], key=lambda s: (
            results[label][s].qps if results[label][s].recall >= TARGET_RECALL else -1
        ))
        assert results[label]["BlendHouse"].recall >= TARGET_RECALL
        assert results[label]["BlendHouse"].qps >= 0.9 * results[label][best_system].qps
    # Shape 3: pgvector's recall collapses at "99% selectivity".
    assert results["hybrid 99% sel"]["pgvector"].recall < 0.3
    assert results["hybrid 99% sel"]["BlendHouse"].recall >= TARGET_RECALL
    assert results["hybrid 99% sel"]["Milvus"].recall >= TARGET_RECALL

    # Wall-clock target: one BlendHouse hybrid query end to end.
    workload = workloads["hybrid 1% sel"]
    sql = workload.sql(0)
    benchmark(lambda: bh_cohere.execute(sql))
