"""Ablation — on-disk indexes for cold reads (the paper's future work #1).

The paper's conclusion proposes "exploring the on-disk vector index more
for better cold read performance".  This ablation quantifies the trade
at the index level, modelling the residency split directly:

* **HNSW** must be fully RAM-resident before serving: a cold worker
  fetches the whole persisted index from the object store first.
* **DISKANN** keeps only routing state in RAM (``memory_bytes`` reports
  ids + medoid); the graph and vectors stay on shared storage and are
  read per visited node during the search (charged via the index's I/O
  hook).

Cold = first query on an empty cache; warm = the same query with the
index resident.  The engine currently loads any index payload wholesale
(the conservative choice); a head/graph split of the persisted layout is
the future-work item this ablation motivates.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from repro.simulate.clock import SimulatedClock
from repro.vindex.registry import IndexSpec, create_index, serialize_index
from repro.workloads.datasets import make_cohere_like

DIM = 64
N = 4000


@pytest.fixture(scope="module")
def cold_read_results():
    dataset = make_cohere_like(n=N, dim=DIM, n_queries=5, seed=17)
    vectors = dataset.vectors
    query = dataset.queries[0]
    cost = BENCH_COST
    out = {}

    for label, index_type, params, search_params in (
        ("HNSW", "HNSW", {"m": 8, "ef_construction": 64}, {"ef_search": 64}),
        ("DISKANN", "DISKANN", {"r": 16, "build_beam": 32}, {"beam": 64}),
    ):
        index = create_index(IndexSpec(index_type=index_type, dim=DIM, params=params))
        index.train(vectors)
        index.add_with_ids(vectors, np.arange(N))
        persisted_bytes = len(serialize_index(index))
        resident_bytes = index.memory_bytes()

        clock = SimulatedClock()
        charger = getattr(index, "set_io_charger", None)
        if callable(charger):
            # Disk-resident nodes are read per beam round; DiskANN keeps
            # ~8 I/Os in flight, so the effective per-read latency is the
            # SSD latency divided by the I/O parallelism.
            charger(lambda nbytes: clock.advance(cost.disk_read(nbytes) / 8.0))

        # Cold: fetch whatever must be RAM-resident, then search.
        clock.advance(cost.object_store_read(resident_bytes))
        result = index.search_with_filter(query, 10, **search_params)
        clock.advance(cost.distance_cost(result.visited, DIM))
        cold = clock.now

        # Warm: the resident state is already loaded.
        clock.reset()
        result = index.search_with_filter(query, 10, **search_params)
        clock.advance(cost.distance_cost(result.visited, DIM))
        warm = clock.now

        out[label] = {
            "cold": cold,
            "warm": warm,
            "persisted_bytes": persisted_bytes,
            "resident_bytes": resident_bytes,
        }
    return out


def test_ablation_cold_read(benchmark, cold_read_results):
    rows = []
    for label, values in cold_read_results.items():
        rows.append([
            label,
            values["persisted_bytes"] / 1024,
            values["resident_bytes"] / 1024,
            values["cold"] * 1e3,
            values["warm"] * 1e3,
            values["cold"] / values["warm"],
        ])
    print(fmt_table(
        "Ablation: cold vs warm query latency by index residency",
        ["index", "persisted KiB", "RAM-resident KiB",
         "cold (sim ms)", "warm (sim ms)", "cold/warm"],
        rows,
    ))
    record(benchmark, "cold_ms", {
        label: values["cold"] * 1e3 for label, values in cold_read_results.items()
    })

    hnsw = cold_read_results["HNSW"]
    diskann = cold_read_results["DISKANN"]
    # The graph index needs orders of magnitude more resident state...
    assert hnsw["resident_bytes"] > 20 * diskann["resident_bytes"]
    # ...so its cold start is far more expensive.
    assert hnsw["cold"] > 2 * diskann["cold"]
    # The flip side the paper accepts: disk-resident search is slower
    # when warm (per-node reads on the search path).
    assert diskann["warm"] > hnsw["warm"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
