"""Fig 18 — immediate query QPS in response to scaling.

Paper: QPS rises almost linearly as the read warehouse scales, and —
unlike load-before-serve systems (Manu) — newly added workers
contribute immediately because vector search serving bridges their cold
caches.  We run a continuous hybrid workload on the simulated clock,
scale the warehouse at fixed marks, and record QPS per time window.

The table uses per-segment FLAT indexes so per-worker scan compute
dominates the query (the regime where the paper's near-linear scaling
is visible); the serving/elasticity machinery is index-type agnostic.
"""

import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from repro.cluster.engine import ClusteredBlendHouse
from repro.cluster.warehouse import WarehouseConfig
from repro.observe.slo import SLObjective, SLOMonitor
from repro.simulate.metrics import ThroughputWindow, percentile
from repro.workloads.datasets import make_cohere_like

SCALE_STEPS = [2, 4, 6, 8]
QUERIES_PER_PHASE = 60
FIG18_COST = BENCH_COST.scaled(rpc_round_trip_s=1e-4)


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


@pytest.fixture(scope="module")
def elasticity():
    dataset = make_cohere_like(n=30_000, dim=64, n_queries=40, seed=21)
    cluster = ClusteredBlendHouse(
        read_workers=SCALE_STEPS[0],
        cost_model=FIG18_COST,
        warehouse_config=WarehouseConfig(serving_enabled=True),
    )
    cluster.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE FLAT('DIM={dataset.dim}'))"
    )
    cluster.db.table("bench").writer.config.max_segment_rows = 950
    cluster.insert_columns(
        "bench",
        {"id": dataset.scalars["id"], "attr": dataset.scalars["attr"]},
        dataset.vectors,
    )
    cluster.preload("bench")

    window = ThroughputWindow(bucket_seconds=0.005)
    phase_qps = {}
    query_index = 0

    def run_phase(workers, slo=None, slo_name=None):
        nonlocal query_index
        latencies = []
        start = cluster.clock.now
        for _ in range(QUERIES_PER_PHASE):
            query = dataset.queries[query_index % len(dataset.queries)]
            query_index += 1
            sql = (
                f"SELECT id FROM bench WHERE attr < 9900 ORDER BY "
                f"L2Distance(embedding, {vector_sql(query)}) LIMIT 10"
            )
            query_start = cluster.clock.now
            cluster.execute(sql)
            latencies.append(cluster.clock.now - query_start)
            if slo is not None:
                slo.record(slo_name, bad=latencies[-1] > slo_threshold)
            window.record(cluster.clock.now)
        elapsed = cluster.clock.now - start
        phase_qps[workers] = QUERIES_PER_PHASE / elapsed
        return latencies

    run_phase(SCALE_STEPS[0])  # warmup (cold caches, first plans)
    baseline = run_phase(SCALE_STEPS[0])  # measured baseline phase
    # The paper's elasticity claim in SLO terms: scaling must not blow
    # query latency past 2x the steady-state baseline p99 — new workers
    # serve through warm peers instead of stalling on cold caches.  The
    # burn-rate monitor holding *clear* throughout scaling is the
    # deterministic assertion of "cold-cache misses are masked".
    slo_threshold = 2.0 * percentile(sorted(baseline), 99.0)
    slo = SLOMonitor(cluster.clock, metrics=cluster.db.metrics)
    slo.add_objective(SLObjective(
        name="scaling_latency", kind="latency",
        target=0.9, threshold_s=slo_threshold,
    ))
    # Consume counters through the public exporter dict, as a client would.
    start_serving = cluster.export_metrics().as_dict()["counters"].get(
        "worker.serving_calls", 0
    )
    slo_by_phase = {}
    for workers in SCALE_STEPS[1:]:
        cluster.scale_to(workers)
        run_phase(workers, slo=slo, slo_name="scaling_latency")
        slo_by_phase[workers] = slo.evaluate()["scaling_latency"]
    end_serving = cluster.export_metrics().as_dict()["counters"].get(
        "worker.serving_calls", 0
    )
    return phase_qps, window.series(), end_serving - start_serving, slo_by_phase


def test_fig18_elasticity(benchmark, elasticity):
    phase_qps, series, serving_used, slo_by_phase = elasticity
    rows = [[workers, qps] for workers, qps in phase_qps.items()]
    print(fmt_table(
        "Fig 18: steady QPS per scaling phase (simulated)",
        ["workers", "QPS"],
        rows,
    ))
    print(fmt_table(
        "Fig 18: QPS over time while scaling (window = 5 sim-ms)",
        ["sim time (s)", "QPS"],
        [[t, qps] for t, qps in series if qps > 0][:24],
    ))
    record(benchmark, "phase_qps", {str(k): v for k, v in phase_qps.items()})
    record(benchmark, "slo_by_phase", {str(k): v for k, v in slo_by_phase.items()})

    assert serving_used > 0, "new workers must serve through RPC immediately"
    # Elasticity without an availability dip: the latency SLO never
    # pages while workers are added — cold caches are bridged, not felt.
    for workers, status in slo_by_phase.items():
        assert not status["alerting"], (
            f"scaling to {workers} workers tripped the latency SLO: {status}"
        )
    qps_values = [phase_qps[w] for w in SCALE_STEPS]
    # QPS grows with scale: strictly over the full range, and each step
    # is at worst a small regression (consistent hashing rebalances are
    # not perfectly even at every size).
    assert all(
        qps_values[i + 1] > 0.85 * qps_values[i] for i in range(len(qps_values) - 1)
    )
    overall = qps_values[-1] / qps_values[0]
    assert overall > 1.8, f"8 vs 2 workers should give near-linear gains, got {overall:.2f}x"

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
