"""Table IV — end-to-end load time of BlendHouse, Milvus, pgvector.

Paper numbers (seconds): Cohere — BlendHouse 559.1, Milvus 783.3,
pgvector 1225.5; OpenAI — 5397.8 / 9448.1 / 10068.4.  The shape to
reproduce: BlendHouse loads fastest because it *pipelines* segment
writes with index builds; Milvus is blocking (write, seal, then build);
pgvector builds single-process and is slowest.  All systems build HNSW
with the same construction parameters; reported times are simulated.
"""

import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from benchmarks.conftest import HNSW_OPTIONS, HNSW_PARAMS
from repro.baselines import MilvusLike, PgVectorLike

PAPER = {
    "cohere": {"BlendHouse": 559.1, "Milvus": 783.3, "pgvector": 1225.5},
    "openai": {"BlendHouse": 5397.8, "Milvus": 9448.1, "pgvector": 10068.4},
}


@pytest.fixture(scope="module")
def load_times(cohere_ds, openai_ds):
    results = {}
    for name, dataset in (("cohere", cohere_ds), ("openai", openai_ds)):
        from repro.core.database import BlendHouse

        db = BlendHouse(cost_model=BENCH_COST)
        db.execute(
            f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
            f"INDEX ann embedding TYPE HNSW('DIM={dataset.dim}', '{HNSW_OPTIONS}'))"
        )
        db.table("bench").writer.config.max_segment_rows = 1000
        report = db.insert_columns(
            "bench",
            {"id": dataset.scalars["id"], "attr": dataset.scalars["attr"]},
            dataset.vectors,
        )
        milvus = MilvusLike(cost=BENCH_COST)
        t_milvus = milvus.load(
            dataset.vectors, dataset.scalars,
            index_type="HNSW", index_params=dict(HNSW_PARAMS),
        )
        pgvector = PgVectorLike(cost=BENCH_COST)
        t_pg = pgvector.load(
            dataset.vectors, dataset.scalars,
            index_type="HNSW", index_params=dict(HNSW_PARAMS),
        )
        results[name] = {
            "BlendHouse": report.simulated_seconds,
            "Milvus": t_milvus,
            "pgvector": t_pg,
        }
    return results


def test_table04_load_time(benchmark, load_times, cohere_ds):
    rows = []
    for dataset in ("cohere", "openai"):
        for system in ("BlendHouse", "Milvus", "pgvector"):
            rows.append([
                dataset, system,
                PAPER[dataset][system],
                load_times[dataset][system],
            ])
    print(fmt_table(
        "Table IV: load time (paper seconds vs simulated seconds)",
        ["dataset", "system", "paper (s)", "measured (sim s)"],
        rows,
    ))
    for dataset in ("cohere", "openai"):
        measured = load_times[dataset]
        assert measured["BlendHouse"] < measured["Milvus"] < measured["pgvector"], (
            f"{dataset}: load-time ordering must match the paper"
        )
        ratio = measured["pgvector"] / measured["BlendHouse"]
        assert 1.2 < ratio < 6.0, "pgvector/BlendHouse gap should be a small factor"
    record(benchmark, "load_times", load_times)

    # Wall-clock target: a small real ingest through the full write path.
    import numpy as np

    def small_ingest():
        from repro.core.database import BlendHouse

        db = BlendHouse(cost_model=BENCH_COST)
        db.execute(
            "CREATE TABLE t (id UInt64, attr Int64, embedding Array(Float32), "
            "INDEX ann embedding TYPE FLAT('DIM=16'))"
        )
        rng = np.random.default_rng(0)
        db.insert_columns(
            "t",
            {"id": np.arange(200, dtype=np.uint64),
             "attr": np.zeros(200, dtype=np.int64)},
            rng.normal(size=(200, 16)).astype(np.float32),
        )

    benchmark.pedantic(small_ingest, rounds=3, iterations=1)
