"""Fig 19 — impact of the number of segments on performance.

Paper: under extremely high write frequency the segment count grows,
and per-worker query QPS falls as segments accumulate; background
compaction keeps the count converged in a range where QPS stays healthy.
We ingest a stream of small batches with compaction disabled, sampling
(segment count, QPS) pairs, then enable compaction and confirm both the
segment count and the QPS recover.
"""

import pytest

from benchmarks.common import BENCH_COST, fmt_table, record, smoke_scaled, write_bench_json
from repro.core.database import BlendHouse
from repro.workloads.datasets import make_cohere_like
from repro.workloads.vectorbench import qps_from_latencies

BATCH_ROWS = 150
BATCHES = smoke_scaled(16, 12)
SAMPLE_EVERY = smoke_scaled(4, 3)


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


@pytest.fixture(scope="module")
def stream_results():
    dataset = make_cohere_like(n=BATCH_ROWS * BATCHES, dim=32, n_queries=20, seed=9)
    db = BlendHouse(cost_model=BENCH_COST)
    db.execute(
        f"CREATE TABLE stream (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE HNSW('DIM={dataset.dim}', 'M=8, ef_construction=48'))"
    )
    db.table("stream").writer.config.max_segment_rows = BATCH_ROWS

    def measure_qps():
        latencies = []
        for query in dataset.queries:
            sql = (
                f"SELECT id FROM stream ORDER BY "
                f"L2Distance(embedding, {vector_sql(query)}) LIMIT 10"
            )
            start = db.clock.now
            db.execute(sql)
            latencies.append(db.clock.now - start)
        return qps_from_latencies(latencies)

    samples = []
    for batch in range(BATCHES):
        lo, hi = batch * BATCH_ROWS, (batch + 1) * BATCH_ROWS
        db.insert_columns(
            "stream",
            {
                "id": dataset.scalars["id"][lo:hi],
                "attr": dataset.scalars["attr"][lo:hi],
            },
            dataset.vectors[lo:hi],
        )
        if (batch + 1) % SAMPLE_EVERY == 0:
            measure_qps()  # warm caches for the new segments
            samples.append((len(db.table("stream").manager), measure_qps()))

    db.compact("stream")
    measure_qps()  # warm caches post-compaction
    compacted = (len(db.table("stream").manager), measure_qps())
    return samples, compacted


def test_fig19_segment_count_vs_qps(benchmark, stream_results):
    samples, compacted = stream_results
    rows = [[segments, qps, "write stream"] for segments, qps in samples]
    rows.append([compacted[0], compacted[1], "after compaction"])
    print(fmt_table(
        "Fig 19: QPS vs number of segments (simulated)",
        ["segments", "QPS", "state"],
        rows,
    ))
    record(benchmark, "samples", samples)
    record(benchmark, "compacted", compacted)
    write_bench_json(
        "fig19_segment_count", {"samples": samples, "compacted": compacted}
    )

    counts = [segments for segments, _ in samples]
    qps = [q for _, q in samples]
    # More segments accumulate as the stream runs, and QPS declines.
    assert counts == sorted(counts) and counts[-1] > counts[0]
    assert qps[-1] < qps[0]
    # Compaction converges the segment count and recovers throughput —
    # with all rows still visible.
    assert compacted[0] < counts[-1] / 2
    assert compacted[1] > qps[-1] * 1.1

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
