"""Fig 16 — performance of different data partition strategies.

Paper (LAION workload): random partitioning is the baseline; scalar
partitioning (segments split by caption-image similarity score) and
semantic partitioning (k-means CLUSTER BY over embeddings) each beat it
via segment pruning; their combination is best.

We build four tables over the same shuffled LAION-like data and run the
same multi-predicate hybrid workload (similarity range + top-k ANN)
against each.
"""

import numpy as np
import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from repro.core.database import BlendHouse
from repro.workloads.recall import ground_truth, recall_at_k
from repro.workloads.vectorbench import qps_from_latencies

N_QUERIES = 25
K = 10
BUCKETS = 8


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


def _build(laion_ds, *, partition_by: str = "", cluster_by: bool = False,
           shuffle_seed: int = 7) -> BlendHouse:
    db = BlendHouse(cost_model=BENCH_COST)
    ddl_suffix = ""
    if partition_by:
        ddl_suffix += f" PARTITION BY {partition_by}"
    if cluster_by:
        ddl_suffix += f" CLUSTER BY embedding INTO {BUCKETS} BUCKETS"
    db.execute(
        f"CREATE TABLE laion (id UInt64, sim_bucket Int64, similarity Float64, "
        f"embedding Array(Float32), "
        f"INDEX ann embedding TYPE FLAT('DIM={laion_ds.dim}')){ddl_suffix}"
    )
    db.table("laion").writer.config.max_segment_rows = max(
        64, laion_ds.n // (BUCKETS * 2)
    )
    # Shuffle so "no partitioning" really is random row placement.
    rng = np.random.default_rng(shuffle_seed)
    order = rng.permutation(laion_ds.n)
    similarity = np.asarray(laion_ds.scalars["similarity"])[order]
    db.insert_columns(
        "laion",
        {
            "id": np.asarray(laion_ds.scalars["id"])[order],
            "sim_bucket": (similarity * 20).astype(np.int64),
            "similarity": similarity,
        },
        laion_ds.vectors[order],
    )
    return db


def _workload(laion_ds, seed=3):
    rng = np.random.default_rng(seed)
    thresholds = rng.uniform(0.30, 0.42, size=N_QUERIES)
    similarity = np.asarray(laion_ds.scalars["similarity"])
    masks = [similarity >= t for t in thresholds]
    truth = ground_truth(laion_ds.vectors, laion_ds.queries[:N_QUERIES], K, masks)
    return thresholds, truth


def _measure(db, laion_ds, thresholds, truth):
    # Map query rows back through the shuffle: ids are stable, so recall
    # is computed on returned ids against unshuffled ground truth.
    latencies, results = [], []
    for qi in range(N_QUERIES):
        sql = (
            f"SELECT id FROM laion WHERE similarity >= {thresholds[qi]:.4f} "
            f"ORDER BY L2Distance(embedding, {vector_sql(laion_ds.queries[qi])}) "
            f"LIMIT {K}"
        )
        start = db.clock.now
        out = db.execute(sql)
        latencies.append(db.clock.now - start)
        results.append([row[0] for row in out.rows])
    return qps_from_latencies(latencies), recall_at_k(results, truth, K)


@pytest.fixture(scope="module")
def strategy_results(laion_ds):
    thresholds, truth = _workload(laion_ds)
    configs = {
        "random": dict(),
        "scalar": dict(partition_by="sim_bucket"),
        "semantic": dict(cluster_by=True),
        "combined": dict(partition_by="sim_bucket", cluster_by=True),
    }
    out = {}
    for label, config in configs.items():
        db = _build(laion_ds, **config)
        # The number of centroid-nearest segments to probe scales with
        # how finely the table is partitioned (the paper's runtime
        # adaptivity; here fixed per configuration for determinism).
        segments = len(db.table("laion").manager)
        db.settings.semantic_prune_keep = max(8, segments // 3)
        _measure(db, laion_ds, thresholds, truth)  # warmup caches
        qps, recall = _measure(db, laion_ds, thresholds, truth)
        out[label] = (qps, recall, len(db.table("laion").manager))
    return out


def test_fig16_partition_strategies(benchmark, strategy_results):
    rows = [
        [label, qps, recall, segments]
        for label, (qps, recall, segments) in strategy_results.items()
    ]
    print(fmt_table(
        "Fig 16: QPS by partition strategy (simulated, LAION-like workload)",
        ["strategy", "QPS", "recall", "segments"],
        rows,
    ))
    record(benchmark, "qps", {k: v[0] for k, v in strategy_results.items()})

    qps = {label: values[0] for label, values in strategy_results.items()}
    recall = {label: values[1] for label, values in strategy_results.items()}
    # Shapes: both single strategies beat random; combined is best.
    assert qps["scalar"] > qps["random"]
    assert qps["semantic"] > qps["random"]
    assert qps["combined"] >= 0.95 * max(qps["scalar"], qps["semantic"])
    assert qps["combined"] > qps["random"] * 1.2
    # Pruning must not sacrifice accuracy.
    assert all(r > 0.85 for r in recall.values()), recall

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
