"""Table V — load time of different index types.

Paper (seconds, Cohere / OpenAI): BH-HNSW 559.1 / 5397.8,
BH-HNSWSQ 351.6 / 3484.0, BH-IVFPQFS 264.9 / 3046.9.  Shape: HNSW is
the slowest build, HNSWSQ ≈ 0.65x of it, IVFPQFS the fastest.
Measured times are simulated end-to-end ingests through the pipelined
write path with identical data.
"""

import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from repro.core.database import BlendHouse

PAPER = {
    "cohere": {"BH-HNSW": 559.1, "BH-HNSWSQ": 351.6, "BH-IVFPQFS": 264.9},
    "openai": {"BH-HNSW": 5397.8, "BH-HNSWSQ": 3484.0, "BH-IVFPQFS": 3046.9},
}
INDEX_DDL = {
    "BH-HNSW": ("HNSW", "M=8, ef_construction=64"),
    "BH-HNSWSQ": ("HNSWSQ", "M=8, ef_construction=64"),
    "BH-IVFPQFS": ("IVFPQFS", "m=8"),
}


def _load_time(dataset, index_type, options):
    db = BlendHouse(cost_model=BENCH_COST)
    db.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE {index_type}('DIM={dataset.dim}', '{options}'))"
    )
    db.table("bench").writer.config.max_segment_rows = 1000
    report = db.insert_columns(
        "bench",
        {"id": dataset.scalars["id"], "attr": dataset.scalars["attr"]},
        dataset.vectors,
    )
    return report.simulated_seconds


@pytest.fixture(scope="module")
def load_times(cohere_ds, openai_ds):
    out = {}
    for name, dataset in (("cohere", cohere_ds), ("openai", openai_ds)):
        out[name] = {
            label: _load_time(dataset, index_type, options)
            for label, (index_type, options) in INDEX_DDL.items()
        }
    return out


def test_table05_index_load_time(benchmark, load_times):
    rows = []
    for dataset in ("cohere", "openai"):
        for label in INDEX_DDL:
            rows.append([
                dataset, label, PAPER[dataset][label], load_times[dataset][label],
            ])
    print(fmt_table(
        "Table V: load time per index type (paper s vs simulated s)",
        ["dataset", "index", "paper (s)", "measured (sim s)"],
        rows,
    ))
    record(benchmark, "load_times", load_times)
    for dataset in ("cohere", "openai"):
        measured = load_times[dataset]
        assert measured["BH-HNSW"] > measured["BH-HNSWSQ"] > measured["BH-IVFPQFS"], (
            f"{dataset}: index build-time ordering must match the paper"
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
