"""Fig 11 — query latency: local index, vector search serving, brute force.

Paper: an index-cache miss that falls back to brute force costs 14.5x
the local-search latency, while the serving RPC path adds only +16.6%.
We reproduce the three states on a warehouse over a 30k-row IVF world
(large enough that ANN-vs-brute compute dominates the query):

* *local* — indexes preloaded on their scheduled workers;
* *serving* — a third worker joins; segments it now owns are searched
  via RPC against the previous owners (background warm-up loads are
  frozen so every measured query really exercises the RPC path);
* *brute force* — serving disabled and all caches cleared per query.
"""

import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from repro.cluster.engine import ClusteredBlendHouse
from repro.cluster.warehouse import WarehouseConfig
from repro.simulate.metrics import LatencyRecorder
from repro.workloads.datasets import make_cohere_like

PAPER = {"local": 1.0, "serving": 1.166, "brute": 14.5}
# Intra-pod RPC scaled with the rest of the bench cost calibration.
FIG11_COST = BENCH_COST.scaled(rpc_round_trip_s=1e-4)
N_QUERIES = 12


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


def _freeze_background_loads(cluster):
    for worker in cluster.read_vw.workers.values():
        worker.schedule_background_load = lambda key: None
        worker._pending_loads.clear()


@pytest.fixture(scope="module")
def latencies():
    dataset = make_cohere_like(n=60_000, dim=96, n_queries=N_QUERIES, seed=11)
    cluster = ClusteredBlendHouse(
        read_workers=2,
        cost_model=FIG11_COST,
        warehouse_config=WarehouseConfig(serving_enabled=True),
    )
    cluster.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE IVFFLAT('DIM={dataset.dim}'))"
    )
    cluster.db.table("bench").writer.config.max_segment_rows = 10_000
    cluster.insert_columns(
        "bench",
        {"id": dataset.scalars["id"], "attr": dataset.scalars["attr"]},
        dataset.vectors,
    )
    cluster.preload("bench")
    queries = dataset.queries

    def run_pass(clear_caches=False):
        recorder = LatencyRecorder()
        for query in queries:
            if clear_caches:
                for worker in cluster.read_vw.workers.values():
                    worker.lose_memory()
                    worker._disk.clear()
            sql = (
                f"SELECT id FROM bench ORDER BY "
                f"L2Distance(embedding, {vector_sql(query)}) LIMIT 10"
            )
            start = cluster.clock.now
            cluster.execute(sql)
            recorder.record(cluster.clock.now - start)
        return recorder

    out = {}
    run_pass()  # warmup: plan + column caches
    out["local"] = run_pass().summary().mean

    # Scale up with background warm-up frozen → stable serving state.
    _freeze_background_loads(cluster)
    cluster.scale_to(3)
    _freeze_background_loads(cluster)
    # Read counters through the public exporter, as a client would.
    serving_before = cluster.export_metrics().counter("worker.serving_calls")
    out["serving"] = run_pass().summary().mean
    out["_serving_calls"] = (
        cluster.export_metrics().counter("worker.serving_calls") - serving_before
    )

    cluster.read_vw.config.serving_enabled = False
    out["brute"] = run_pass(clear_caches=True).summary().mean
    return out


def test_fig11_cache_miss_latency(benchmark, latencies):
    local = latencies["local"]
    rows = [
        ["local search", PAPER["local"], latencies["local"] * 1e3, 1.0],
        ["vector serving", PAPER["serving"], latencies["serving"] * 1e3,
         latencies["serving"] / local],
        ["brute force", PAPER["brute"], latencies["brute"] * 1e3,
         latencies["brute"] / local],
    ]
    print(fmt_table(
        "Fig 11: latency by cache state (paper x-local vs measured)",
        ["state", "paper (x local)", "measured (sim ms)", "measured (x local)"],
        rows,
    ))
    record(benchmark, "relative", {
        "serving": latencies["serving"] / local,
        "brute": latencies["brute"] / local,
    })
    assert latencies["_serving_calls"] > 0, "scale-up must exercise serving"
    # Shapes: serving is a modest overhead over local; brute force is
    # many times local; serving beats brute force decisively.  (The
    # kernel pass cut the local baseline, so the unchanged RPC round
    # trip is a larger multiple of it than before; absolute serving
    # latency did not regress.)
    assert latencies["serving"] < 5.0 * local
    assert latencies["brute"] > 4.0 * local
    assert latencies["brute"] > 2.0 * latencies["serving"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
