"""CI serving-regression gate for tail latency.

Compares fresh ``BENCH_serving_closed.json`` / ``BENCH_serving_open.json``
(written by ``bench_serving.py``) against the committed baseline in
``benchmarks/baselines/serving.json``, failing when any tracked lane's
p99 rises more than the threshold above baseline.  Latencies are
*virtual* seconds on a deterministic event loop — run-to-run noise is
zero — so a p99 increase can only come from a code change that makes the
serving path do more simulated work or queue longer.

Completion counts are also checked: a "latency win" bought by silently
rejecting or erroring more of the offered load is a regression too.

Usage::

    python benchmarks/check_serving_regression.py \
        [--closed BENCH_serving_closed.json] \
        [--open BENCH_serving_open.json] \
        [--baseline benchmarks/baselines/serving.json] \
        [--max-p99-rise 0.15]

Exit status 0 when every lane passes, 1 otherwise.  After a deliberate
serving change, refresh the baseline from a ``BENCH_SMOKE=1`` run (the
scale CI uses) and commit it alongside the change.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_CLOSED = "BENCH_serving_closed.json"
DEFAULT_OPEN = "BENCH_serving_open.json"
DEFAULT_BASELINE = "benchmarks/baselines/serving.json"


def check(closed_path: str, open_path: str, baseline_path: str,
          max_p99_rise: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    current = {}
    for mode, path in (("closed", closed_path), ("open", open_path)):
        with open(path) as handle:
            current[mode] = json.load(handle)

    failures = []
    for mode, base_report in sorted(baseline.items()):
        report = current.get(mode)
        if report is None:
            failures.append(f"{mode}: no current artifact")
            continue
        if report.get("completed", 0) < base_report.get("completed", 0):
            failures.append(
                f"{mode}: completed {report.get('completed')} < "
                f"baseline {base_report.get('completed')}"
            )
        for lane, base_dist in sorted(base_report.get("latency", {}).items()):
            cur_dist = report.get("latency", {}).get(lane)
            if cur_dist is None:
                failures.append(f"{mode}/{lane}: lane missing from current run")
                continue
            ceiling = base_dist["p99"] * (1.0 + max_p99_rise)
            status = "ok"
            if cur_dist["p99"] > ceiling:
                failures.append(
                    f"{mode}/{lane}: p99 {cur_dist['p99'] * 1e3:.4f}ms > "
                    f"ceiling {ceiling * 1e3:.4f}ms (baseline "
                    f"{base_dist['p99'] * 1e3:.4f}ms, max rise "
                    f"{max_p99_rise:.0%})"
                )
                status = "P99 REGRESSION"
            print(
                f"{mode:7s} {lane:12s} p99 {base_dist['p99'] * 1e3:9.4f}ms -> "
                f"{cur_dist['p99'] * 1e3:9.4f}ms  [{status}]"
            )
    if failures:
        print("\nserving regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nserving regression gate passed")
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--closed", default=DEFAULT_CLOSED)
    parser.add_argument("--open", dest="open_path", default=DEFAULT_OPEN)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--max-p99-rise", type=float, default=0.15)
    args = parser.parse_args(argv)
    return check(args.closed, args.open_path, args.baseline, args.max_p99_rise)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
