"""Fig 17 — performance breakdown of the workload-aware optimizations.

Paper: on a repetitive hybrid workload, READ_Opt (adaptive column
caching + reduced read granularity) improves QPS by 124.2% over the
baseline, and READ_Opt + Query_Opt (plan caching + short-circuit
planning) reaches +206.5% total.

Our configurations:

* baseline      — full-block remote column reads, full planning per query
* READ_Opt      — ranged reads + adaptive split-buffer cache
* +Query_Opt    — plus the parameterized plan cache / short circuit
"""

import pytest

from benchmarks.common import fmt_table, measure_blendhouse, record
from repro.workloads.vectorbench import make_hybrid_workload

# Paper: "+124.2%" and "+206.5%" QPS over the baseline.
PAPER_GAINS = {"READ_Opt": 2.242, "READ_Opt+Query_Opt": 3.065}


@pytest.fixture(scope="module")
def workload(cohere_ds):
    # Project scalar columns so column I/O is actually on the read path.
    wl = make_hybrid_workload(cohere_ds, k=10, pass_fraction=0.99)
    original_sql = wl.sql

    def sql_with_columns(qi, table="bench"):
        return original_sql(qi, table).replace(
            "SELECT id, dist FROM", "SELECT id, attr, dist FROM"
        )

    wl.sql = sql_with_columns
    return wl


def test_fig17_workload_aware_opts(benchmark, reset_settings, workload):
    db = reset_settings
    results = {}

    db.execute("SET read_opt = 0")
    db.execute("SET enable_plan_cache = 0")
    db.execute("SET enable_short_circuit = 0")
    results["baseline"], _ = measure_blendhouse(db, workload)

    db.execute("SET read_opt = 1")
    db.execute(workload.sql(0))  # warm the column cache
    results["READ_Opt"], _ = measure_blendhouse(db, workload)

    db.execute("SET enable_plan_cache = 1")
    db.execute("SET enable_short_circuit = 1")
    db.execute(workload.sql(0))  # warm the plan cache
    results["READ_Opt+Query_Opt"], _ = measure_blendhouse(db, workload)

    baseline = results["baseline"]
    rows = []
    for label in ("baseline", "READ_Opt", "READ_Opt+Query_Opt"):
        gain = results[label] / baseline
        paper_gain = PAPER_GAINS.get(label, 1.0)
        rows.append([label, results[label], f"{(gain - 1) * 100:.0f}%",
                     f"{(paper_gain - 1) * 100:.0f}%"])
    print(fmt_table(
        "Fig 17: workload-aware optimization breakdown (simulated QPS)",
        ["configuration", "QPS", "measured gain", "paper gain"],
        rows,
    ))
    record(benchmark, "qps", results)

    # Shapes: each optimization layer adds meaningful throughput.
    assert results["READ_Opt"] > 1.3 * baseline, (
        "read optimizations must deliver a large gain"
    )
    assert results["READ_Opt+Query_Opt"] > 1.15 * results["READ_Opt"], (
        "plan-level optimizations must add on top"
    )

    benchmark(lambda: db.execute(workload.sql(0)))
