"""Fig 13 — recall vs QPS for different index types.

Paper shapes: BH-HNSW reaches the highest recall ceiling; BH-HNSWSQ
trades a little recall for lower memory at similar speed; BH-IVFPQFS is
cheapest to build but needs refinement to stay accurate and trails at
high recall.  We sweep each index's depth knob through the full engine
and print the three curves (simulated QPS).
"""

import pytest

from benchmarks.common import (
    fmt_table,
    load_blendhouse,
    measure_blendhouse,
    record,
    write_bench_json,
)
from repro.workloads.vectorbench import SweepPoint, make_hybrid_workload

HNSW_SWEEP = [16, 32, 64, 128]
NPROBE_SWEEP = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def curves(cohere_ds):
    workload = make_hybrid_workload(cohere_ds, k=10)
    out = {}
    for label, index_type, options, knob, sweep in (
        ("BH-HNSW", "HNSW", "M=8, ef_construction=64", "ef_search", HNSW_SWEEP),
        ("BH-HNSWSQ", "HNSWSQ", "M=8, ef_construction=64", "ef_search", HNSW_SWEEP),
        ("BH-IVFPQFS", "IVFPQFS", "m=8", "nprobe", NPROBE_SWEEP),
    ):
        db = load_blendhouse(cohere_ds, index_type=index_type, index_options=options)
        db.execute(workload.sql(0))  # warmup
        points = []
        for value in sweep:
            db.execute(f"SET {knob} = {value}")
            qps, recall = measure_blendhouse(db, workload)
            points.append(SweepPoint(params={knob: value}, recall=recall, qps=qps))
        out[label] = points
    return out


def test_fig13_index_type_curves(benchmark, curves):
    rows = []
    for label, points in curves.items():
        for point in points:
            knob, value = next(iter(point.params.items()))
            rows.append([label, f"{knob}={value}", point.recall, point.qps])
    print(fmt_table(
        "Fig 13: recall vs QPS per index type (simulated)",
        ["index", "search param", "recall", "QPS"],
        rows,
    ))
    record(benchmark, "curves", {
        label: [(p.recall, p.qps) for p in points] for label, points in curves.items()
    })
    # Artifact for the CI kernel-regression gate (see
    # benchmarks/check_kernel_regression.py): per-point recall + QPS.
    write_bench_json("fig13_index_recall_qps", {
        label: [
            {"params": p.params, "recall": p.recall, "qps": p.qps}
            for p in points
        ]
        for label, points in curves.items()
    })

    best_recall = {label: max(p.recall for p in points) for label, points in curves.items()}
    # HNSW has the highest recall ceiling; HNSWSQ is close behind;
    # IVFPQFS (with refinement) remains usable but below HNSW.
    assert best_recall["BH-HNSW"] >= 0.95
    assert best_recall["BH-HNSWSQ"] >= 0.85
    assert best_recall["BH-IVFPQFS"] >= 0.80
    assert best_recall["BH-HNSW"] >= best_recall["BH-HNSWSQ"] - 0.01
    assert best_recall["BH-HNSW"] >= best_recall["BH-IVFPQFS"] - 0.01
    # Every curve trades recall up as its knob deepens.
    for label, points in curves.items():
        recalls = [p.recall for p in points]
        assert recalls[-1] >= recalls[0] - 0.02, label

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
