"""Capture the exact Fig 13 top-k results for kernel byte-identity checks.

Runs the same sweep as ``bench_fig13_index_recall_qps.py`` and dumps, per
(index, knob) point, the simulated QPS/recall plus every query's result
rows with distances in ``float.hex()`` form, so two captures can be
compared bit-for-bit.  Used to record the before/after state of a kernel
pass (ISSUE 6 acceptance: top-k ids byte-identical across the pass):

    PYTHONPATH=src:. python benchmarks/capture_kernel_state.py before
    ... apply kernel changes ...
    PYTHONPATH=src:. python benchmarks/capture_kernel_state.py after
    PYTHONPATH=src:. python benchmarks/capture_kernel_state.py diff \
        BENCH_fig13_kernels_before.json BENCH_fig13_kernels_after.json
"""

from __future__ import annotations

import json
import sys

from benchmarks.common import load_blendhouse, run_workload_sql, write_bench_json
from repro.workloads.datasets import make_cohere_like
from repro.workloads.recall import recall_at_k
from repro.workloads.vectorbench import make_hybrid_workload, qps_from_latencies

SWEEPS = (
    ("BH-HNSW", "HNSW", "M=8, ef_construction=64", "ef_search", [16, 32, 64, 128]),
    ("BH-HNSWSQ", "HNSWSQ", "M=8, ef_construction=64", "ef_search", [16, 32, 64, 128]),
    ("BH-IVFPQFS", "IVFPQFS", "m=8", "nprobe", [2, 4, 8, 16]),
)


def capture(tag: str) -> str:
    dataset = make_cohere_like(n=3000, dim=32, n_queries=40)
    workload = make_hybrid_workload(dataset, k=10)
    out = {}
    for label, index_type, options, knob, sweep in SWEEPS:
        db = load_blendhouse(dataset, index_type=index_type, index_options=options)
        db.execute(workload.sql(0))  # warmup: plan + column caches
        points = []
        for value in sweep:
            db.execute(f"SET {knob} = {value}")
            latencies = []
            rows_per_query = []
            for qi in range(len(workload.queries)):
                start = db.clock.now
                result = db.execute(workload.sql(qi))
                latencies.append(db.clock.now - start)
                rows_per_query.append(
                    [[int(row[0]), float(row[1]).hex()] for row in result.rows]
                )
            ids = [[row[0] for row in rows] for rows in rows_per_query]
            points.append(
                {
                    "knob": knob,
                    "value": value,
                    "qps": qps_from_latencies(latencies),
                    "recall": recall_at_k(ids, workload.truth, workload.k),
                    "topk": rows_per_query,
                }
            )
        out[label] = points
    path = write_bench_json(f"fig13_kernels_{tag}", out)
    print(f"wrote {path}")
    return path


def diff(before_path: str, after_path: str) -> int:
    with open(before_path) as handle:
        before = json.load(handle)
    with open(after_path) as handle:
        after = json.load(handle)
    id_mismatches = 0
    dist_mismatches = 0
    max_rel = 0.0
    for label, points in before.items():
        for point, other in zip(points, after[label]):
            for qi, (rows_b, rows_a) in enumerate(zip(point["topk"], other["topk"])):
                ids_b = [row[0] for row in rows_b]
                ids_a = [row[0] for row in rows_a]
                if ids_b != ids_a:
                    id_mismatches += 1
                    print(f"ID MISMATCH {label} {point['knob']}={point['value']} q{qi}:")
                    print(f"  before {ids_b}\n  after  {ids_a}")
                for row_b, row_a in zip(rows_b, rows_a):
                    if row_b[1] != row_a[1]:
                        dist_mismatches += 1
                        db_, da_ = float.fromhex(row_b[1]), float.fromhex(row_a[1])
                        if db_ > 0:
                            max_rel = max(max_rel, abs(da_ - db_) / db_)
            ratio = other["qps"] / max(point["qps"], 1e-12)
            print(
                f"{label:12s} {point['knob']}={point['value']:<4d} "
                f"qps {point['qps']:9.1f} -> {other['qps']:9.1f} ({ratio:4.2f}x)  "
                f"recall {point['recall']:.4f} -> {other['recall']:.4f}"
            )
    print(
        f"\nid mismatches: {id_mismatches}; distance value diffs: {dist_mismatches} "
        f"(max rel {max_rel:.3e})"
    )
    return 1 if id_mismatches else 0


def main(argv: list) -> int:
    if len(argv) >= 3 and argv[0] == "diff":
        return diff(argv[1], argv[2])
    tag = argv[0] if argv else "before"
    capture(tag)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
