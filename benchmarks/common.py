"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation section (see DESIGN.md §4 for the experiment index).  The
helpers here load datasets into engines, drive SQL workloads, sweep
search parameters, and format result tables that are printed to stdout
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them; they
are also attached to each benchmark's ``extra_info``).

Numbers are *simulated* seconds/QPS unless a bench says otherwise; the
claim being reproduced is always the paper's qualitative shape, not the
absolute values (see DESIGN.md §2).
"""

from __future__ import annotations

import json
import os
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.database import BlendHouse
from repro.simulate.costmodel import DeviceCostModel
from repro.workloads.datasets import Dataset
from repro.workloads.recall import recall_at_k
from repro.workloads.vectorbench import HybridWorkload, SweepPoint, qps_from_latencies

# Benchmark cost calibration: the datasets are ~100-1000x smaller than
# the paper's, which shrinks compute costs but not per-request object
# store latency; real ingest paths also overlap PUTs.  A reduced
# first-byte latency keeps the compute/IO balance representative at
# repro scale (DESIGN.md section 2).
BENCH_COST = DeviceCostModel().scaled(object_store_latency_s=3e-3)

# CI smoke mode: BENCH_SMOKE=1 shrinks the workloads so the bench job
# finishes in a couple of minutes while exercising the same code paths
# and assertions.
BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def smoke_scaled(full: int, smoke: int) -> int:
    """``full`` normally, ``smoke`` when BENCH_SMOKE is set."""
    return smoke if BENCH_SMOKE else full


def write_bench_json(name: str, payload: Any) -> str:
    """Persist one benchmark's results as ``BENCH_<name>.json``.

    CI uploads these as artifacts; the payload mirrors what the bench
    attaches to pytest-benchmark's ``extra_info``.
    """
    path = os.path.join(os.getcwd(), f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=_json_safe)
        handle.write("\n")
    return path


def _json_safe(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def load_blendhouse(
    dataset: Dataset,
    index_type: str = "HNSW",
    index_options: str = "",
    table: str = "bench",
    max_segment_rows: int = 1500,
    ddl_suffix: str = "",
    scalar_ddl: str = "attr Int64",
    scalar_columns: Optional[Sequence[str]] = None,
) -> BlendHouse:
    """A BlendHouse with ``dataset`` loaded into ``table``."""
    db = BlendHouse(cost_model=BENCH_COST)
    options = f"'DIM={dataset.dim}'"
    if index_options:
        options += f", '{index_options}'"
    db.execute(
        f"CREATE TABLE {table} (id UInt64, {scalar_ddl}, "
        f"embedding Array(Float32), INDEX ann embedding TYPE {index_type}({options})) "
        f"{ddl_suffix}"
    )
    db.table(table).writer.config.max_segment_rows = max_segment_rows
    names = list(scalar_columns or ["id", "attr"])
    db.insert_columns(
        table,
        {name: dataset.scalars[name] for name in names},
        dataset.vectors,
    )
    return db


def run_workload_sql(
    db: BlendHouse,
    workload: HybridWorkload,
    table: str = "bench",
    settings_sql: Sequence[str] = (),
) -> Tuple[List[float], List[List[int]]]:
    """Run every workload query through SQL; returns (latencies, ids)."""
    for statement in settings_sql:
        db.execute(statement)
    latencies: List[float] = []
    results: List[List[int]] = []
    for qi in range(len(workload.queries)):
        sql = workload.sql(qi, table=table)
        start = db.clock.now
        out = db.execute(sql)
        latencies.append(db.clock.now - start)
        results.append([row[0] for row in out.rows])
    return latencies, results


def measure_blendhouse(
    db: BlendHouse,
    workload: HybridWorkload,
    table: str = "bench",
    settings_sql: Sequence[str] = (),
) -> Tuple[float, float]:
    """(qps, recall) for one workload run."""
    latencies, results = run_workload_sql(db, workload, table, settings_sql)
    return qps_from_latencies(latencies), recall_at_k(results, workload.truth, workload.k)


def sweep_blendhouse(
    db: BlendHouse,
    workload: HybridWorkload,
    ef_values: Sequence[int],
    table: str = "bench",
) -> List[SweepPoint]:
    """Recall/QPS points over an ef_search sweep (VectorDBBench style).

    A short warmup pass fills the plan and column caches first, so the
    sweep measures steady-state throughput (what the paper reports), not
    first-touch cold misses.
    """
    for qi in range(min(3, len(workload.queries))):
        db.execute(workload.sql(qi, table=table))
    points: List[SweepPoint] = []
    for ef in ef_values:
        db.execute(f"SET ef_search = {ef}")
        qps, recall = measure_blendhouse(db, workload, table)
        points.append(SweepPoint(params={"ef_search": ef}, recall=recall, qps=qps))
    return points


def measure_baseline(
    system: Any,
    workload: HybridWorkload,
    **search_params: Any,
) -> Tuple[float, float]:
    """(qps, recall) for a baseline system on one workload."""
    latencies: List[float] = []
    results: List[List[int]] = []
    for qi in range(len(workload.queries)):
        start = system.clock.now
        ids, _ = system.search(
            workload.queries[qi], workload.k, mask=workload.masks[qi], **search_params
        )
        latencies.append(system.clock.now - start)
        results.append(ids.tolist())
    return qps_from_latencies(latencies), recall_at_k(results, workload.truth, workload.k)


def sweep_baseline(
    system: Any,
    workload: HybridWorkload,
    ef_values: Sequence[int],
) -> List[SweepPoint]:
    """Recall/QPS sweep for a baseline."""
    points: List[SweepPoint] = []
    for ef in ef_values:
        qps, recall = measure_baseline(system, workload, ef_search=ef)
        points.append(SweepPoint(params={"ef_search": ef}, recall=recall, qps=qps))
    return points


def best_at_recall(
    points: List[SweepPoint], target: float
) -> Tuple[Optional[SweepPoint], SweepPoint]:
    """(best point meeting target, best-recall point as fallback)."""
    eligible = [p for p in points if p.recall >= target]
    fallback = max(points, key=lambda p: p.recall)
    if not eligible:
        return None, fallback
    return max(eligible, key=lambda p: p.qps), fallback


def fmt_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Plain-text table for bench output."""
    str_rows = [[_fmt_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt_cell(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def record(benchmark: Any, key: str, value: Any) -> None:
    """Attach a result to pytest-benchmark's extra_info (JSON-safe)."""
    if isinstance(value, np.generic):
        value = value.item()
    benchmark.extra_info[key] = value


def measure_serial_latency(
    db: BlendHouse, sqls: Sequence[str], include_planning: bool = True
) -> Tuple[float, List[List[int]]]:
    """(total simulated seconds, result ids) issuing queries one by one.

    With ``include_planning`` the total is the clock delta around each
    ``execute`` — the batched path pays its planning inside the
    submission, so both sides of a serial-vs-batch comparison must count
    it.  Without it the total is execution-only (each result's
    ``simulated_seconds``), isolating the scan for fan-out comparisons.
    """
    total = 0.0
    results: List[List[int]] = []
    for sql in sqls:
        start = db.clock.now
        out = db.execute(sql)
        if include_planning:
            total += db.clock.now - start
        else:
            total += out.simulated_seconds
        results.append([row[0] for row in out.rows])
    return total, results


def measure_batch_latency(
    db: BlendHouse, sqls: Sequence[str]
) -> Tuple[float, List[List[int]]]:
    """(total simulated seconds, result ids) for one batched submission."""
    start = db.clock.now
    outs = db.execute_batch(list(sqls))
    total = db.clock.now - start
    return total, [[row[0] for row in out.rows] for out in outs]
