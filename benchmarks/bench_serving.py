"""Serving-tier tail latency under closed- and open-loop load.

Drives the asyncio serving front-end against the production image-search
trace (``make_production_like``) on a virtual-time event loop, the
"millions of users" axis of the paper's cloud-native claims:

* **Closed loop** — a fixed worker population issues queries back to
  back; measures pipeline latency at a known concurrency.
* **Open loop** — Poisson arrivals at a configured rate, independent of
  completions; queues build toward saturation and the p99/p999 tail
  plus admission rejections tell the real serving story.

Every latency is virtual/simulated seconds on seeded RNGs, so the
numbers are bit-identical run to run and CI can gate p99 tightly
(``check_serving_regression.py`` vs ``baselines/serving.json``).

Artifacts: ``BENCH_serving_closed.json`` and ``BENCH_serving_open.json``.

CLI flags (also runnable standalone, without pytest)::

    PYTHONPATH=src python benchmarks/bench_serving.py \
        [--mode closed|open|both]   # default both
        [--queries N]               # total queries per mode
        [--concurrency N]           # closed-loop worker population
        [--rate QPS]                # open-loop Poisson arrival rate
        [--batch-fraction F]        # share of queries on the batch lane
        [--tenants N]               # distinct tenants in the mix
        [--max-inflight N]          # admission: execution slots
        [--queue-depth N]           # admission: wait-queue bound
        [--timeout S]               # per-query deadline (open loop)
        [--seed N]

``BENCH_SMOKE=1`` shrinks the dataset and query counts for CI;
``SERVING_SLOWDOWN=<mult>`` derates every stage (fault injection for
the regression gate — 2 must make the p99 check fail).
"""

import argparse
import os
import sys

import pytest

if __package__ in (None, ""):  # standalone CLI: python benchmarks/bench_serving.py
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    BENCH_COST,
    fmt_table,
    record,
    smoke_scaled,
    write_bench_json,
)
from repro.core.database import BlendHouse
from repro.observe.slo import SLObjective, SLOMonitor
from repro.serving import (
    ServingConfig,
    ServingFrontend,
    run_closed_loop,
    run_open_loop,
    run_virtual,
)
from repro.workloads.datasets import make_production_like

N = smoke_scaled(8000, 1500)
DIM = smoke_scaled(48, 16)
N_QUERIES = smoke_scaled(100, 20)
SEGMENT_ROWS = smoke_scaled(1500, 500)
TOTAL_QUERIES = smoke_scaled(400, 120)
# More workers than slots + queue (8 + 16), so closed-loop admission
# control visibly engages.
CLOSED_CONCURRENCY = smoke_scaled(64, 32)
# Past capacity on purpose: the open loop must exhibit queueing and
# admission rejections, not just echo the closed-loop numbers (closed
# capacity measures ~23k qps full scale / ~13k smoke).
OPEN_RATE_QPS = smoke_scaled(28000.0, 16000.0)
MAX_INFLIGHT = 8
QUEUE_DEPTH = 16
BATCH_FRACTION = 0.25
TENANTS = ("tenant-a", "tenant-b", "tenant-c")
SLOWDOWN = float(os.environ.get("SERVING_SLOWDOWN", "1") or "1")

# SLO calibration against baselines/serving.json: interactive p50 is
# ~0.16 virtual ms and p95 ~0.28 ms, so at the healthy baseline only a
# few percent of queries breach this threshold — while any SERVING_
# SLOWDOWN >= 2 pushes the bulk of the distribution (p50 and up) over
# it, tripping the fast-burn alert deterministically.
SLO_LATENCY_THRESHOLD_S = 3e-4
SLO_TARGET = 0.8            # 20% error budget on the latency objective
SLO_ALERT_BURN_RATE = 1.5   # alert when >30% of queries breach
SLO_REJECTION_TARGET = 0.7  # admission pressure is expected; alert on worse


def attach_slo(db, frontend):
    """A monitor watching the interactive lane plus rejection rate."""
    slo = SLOMonitor(db.clock, metrics=db.metrics)
    slo.add_objective(SLObjective(
        name="interactive_latency", kind="latency", lane="interactive",
        target=SLO_TARGET, threshold_s=SLO_LATENCY_THRESHOLD_S,
        alert_burn_rate=SLO_ALERT_BURN_RATE,
    ))
    slo.add_objective(SLObjective(
        name="rejection_rate", kind="rejection",
        target=SLO_REJECTION_TARGET, alert_burn_rate=4.0,
    ))
    frontend.slo = slo
    return slo


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


def build_workload(seed=3):
    """(engine, sqls): the production trace loaded and its query mix.

    The mix alternates pure top-k searches with multi-predicate hybrid
    queries (category + score filter), the trace shape of Table VII.
    """
    dataset = make_production_like(n=N, dim=DIM, n_queries=N_QUERIES, seed=seed)
    db = BlendHouse(cost_model=BENCH_COST)
    db.execute(
        f"CREATE TABLE prod (id UInt64, category String, day Int64, "
        f"score Float64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE HNSW('DIM={dataset.dim}'))"
    )
    db.table("prod").writer.config.max_segment_rows = SEGMENT_ROWS
    db.insert_columns(
        "prod",
        {name: dataset.scalars[name]
         for name in ("id", "category", "day", "score")},
        dataset.vectors,
    )
    categories = sorted(set(dataset.scalars["category"]))
    sqls = []
    for qi, query in enumerate(dataset.queries):
        if qi % 2 == 0:
            sqls.append(
                f"SELECT id, dist FROM prod ORDER BY "
                f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT 10"
            )
        else:
            category = categories[qi % len(categories)]
            sqls.append(
                f"SELECT id FROM prod WHERE category = '{category}' "
                f"AND score >= 0.3 ORDER BY "
                f"L2Distance(embedding, {vector_sql(query)}) LIMIT 10"
            )
    return db, sqls


def serve(mode, queries=TOTAL_QUERIES, concurrency=CLOSED_CONCURRENCY,
          rate=OPEN_RATE_QPS, batch_fraction=BATCH_FRACTION,
          tenants=TENANTS, max_inflight=MAX_INFLIGHT,
          queue_depth=QUEUE_DEPTH, timeout_s=None, seed=11):
    """One load run on a fresh engine; returns (LoadReport, observability).

    The second element carries the SLO evaluation, the flight records
    the slow-query log captured, and the event-stream summary.
    """
    db, sqls = build_workload()
    frontend = ServingFrontend(db, ServingConfig(
        max_inflight=max_inflight,
        max_queue_depth=queue_depth,
        time_scale=SLOWDOWN,
    ))
    slo = attach_slo(db, frontend)
    # Record a flight for anything over the SLO threshold (plus the
    # tail-sampled normals the log takes by default).
    db.slowlog.threshold_s = SLO_LATENCY_THRESHOLD_S
    if mode == "closed":
        report = run_virtual(run_closed_loop(
            frontend, sqls, concurrency=concurrency, total_queries=queries,
            batch_fraction=batch_fraction, tenants=tenants,
            timeout_s=timeout_s, seed=seed,
        ))
    else:
        report = run_virtual(run_open_loop(
            frontend, sqls, arrival_rate_qps=rate, total_queries=queries,
            batch_fraction=batch_fraction, tenants=tenants,
            timeout_s=timeout_s, seed=seed,
        ))
    pinned = db.table("prod").manager.store.pinned_count
    assert pinned == 0, f"{pinned} snapshot pins leaked by serving run"
    observability = {
        "slo": slo.as_dict(),
        "slow_queries": [rec.to_dict() for rec in db.slowlog.records()],
        "slowlog_recorded": db.slowlog.recorded,
        "events": db.events.summary(),
    }
    return report, observability


def _latency_rows(report):
    rows = []
    for label, dist in sorted(report.latency.items()):
        rows.append([
            label, dist["count"], dist["p50"] * 1e3, dist["p99"] * 1e3,
            dist["p999"] * 1e3, dist["max"] * 1e3,
        ])
    return rows


def _print_report(title, report):
    print(fmt_table(
        title,
        ["lane", "count", "p50 (ms)", "p99 (ms)", "p999 (ms)", "max (ms)"],
        _latency_rows(report),
    ))
    print(
        f"offered {report.offered}  completed {report.completed}  "
        f"rejected_admission {report.rejected_admission}  "
        f"rejected_quota {report.rejected_quota}  "
        f"timeouts {report.timeouts}  errors {report.errors}  "
        f"qps {report.qps:.1f}"
    )


@pytest.fixture(scope="module")
def closed_report():
    return serve("closed")


@pytest.fixture(scope="module")
def open_report():
    return serve("open")


def test_serving_closed_loop(benchmark, closed_report):
    report, observability = closed_report
    _print_report(
        f"Serving closed loop: {CLOSED_CONCURRENCY} workers, "
        f"{MAX_INFLIGHT} slots (virtual seconds)",
        report,
    )
    payload = report.as_dict()
    payload["observability"] = observability
    record(benchmark, "closed", payload)
    write_bench_json("serving_closed", payload)

    # SLO burn-rate behaviour is deterministic on the virtual clock: the
    # healthy baseline holds the alert clear, while an injected
    # SERVING_SLOWDOWN fault (>= 2x derating) must trip the fast burn.
    latency_slo = observability["slo"]["interactive_latency"]
    if SLOWDOWN >= 2.0:
        assert latency_slo["alerting"], (
            f"SERVING_SLOWDOWN={SLOWDOWN} must trip the latency SLO: "
            f"{latency_slo}"
        )
        # The flight recorder holds full records for the offending
        # queries: span trace, chosen plan, manifest, lane, queue wait.
        slow = [
            rec for rec in observability["slow_queries"]
            if rec["reason"] == "slow"
        ]
        assert slow, "slowdown run must capture slow flight records"
        for rec in slow:
            assert rec["plan"].get("strategy")
            assert rec["manifest_id"] is not None
            assert rec["lane"] in ("interactive", "batch")
            assert rec["queue_wait_s"] is not None
    elif SLOWDOWN == 1.0:
        assert not latency_slo["alerting"], (
            f"healthy baseline must not page: {latency_slo}"
        )

    # Every offered query terminates with some reply.
    assert report.completed + report.rejected_admission + report.timeouts + \
        report.errors == report.offered
    assert report.completed > 0 and report.errors == 0
    # With 3x more workers than slots + queue, admission control engages.
    assert report.rejected_admission > 0
    overall = report.latency["overall"]
    assert overall["p50"] <= overall["p99"] <= overall["p999"]
    # Closed-loop queue wait is bounded by the worker population, so the
    # queue-depth series must never exceed the configured bound.
    assert report.queue_depth is None or report.queue_depth["max"] <= QUEUE_DEPTH

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_serving_open_loop(benchmark, open_report):
    report, observability = open_report
    _print_report(
        f"Serving open loop: {OPEN_RATE_QPS:.0f} qps Poisson arrivals, "
        f"{MAX_INFLIGHT} slots (virtual seconds)",
        report,
    )
    payload = report.as_dict()
    payload["observability"] = observability
    record(benchmark, "open", payload)
    write_bench_json("serving_open", payload)

    assert report.completed + report.rejected_admission + report.timeouts + \
        report.errors == report.offered
    assert report.completed > 0 and report.errors == 0
    # The first tail poll precedes any completion: None, per the
    # LatencyRecorder empty-window contract the load generator relies on.
    assert report.tail_samples and report.tail_samples[0] is None
    overall = report.latency["overall"]
    assert overall["p50"] <= overall["p99"] <= overall["p999"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mode", choices=("closed", "open", "both"),
                        default="both")
    parser.add_argument("--queries", type=int, default=TOTAL_QUERIES)
    parser.add_argument("--concurrency", type=int, default=CLOSED_CONCURRENCY)
    parser.add_argument("--rate", type=float, default=OPEN_RATE_QPS)
    parser.add_argument("--batch-fraction", type=float, default=BATCH_FRACTION)
    parser.add_argument("--tenants", type=int, default=len(TENANTS))
    parser.add_argument("--max-inflight", type=int, default=MAX_INFLIGHT)
    parser.add_argument("--queue-depth", type=int, default=QUEUE_DEPTH)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    tenants = tuple(f"tenant-{i}" for i in range(max(1, args.tenants)))
    modes = ("closed", "open") if args.mode == "both" else (args.mode,)
    for mode in modes:
        report, observability = serve(
            mode, queries=args.queries, concurrency=args.concurrency,
            rate=args.rate, batch_fraction=args.batch_fraction,
            tenants=tenants, max_inflight=args.max_inflight,
            queue_depth=args.queue_depth, timeout_s=args.timeout,
            seed=args.seed,
        )
        _print_report(f"Serving {mode} loop", report)
        for name, status in observability["slo"].items():
            state = "FIRING" if status["alerting"] else "ok"
            print(
                f"slo {name}: {state}  fast_burn={status['fast_burn']:.2f}  "
                f"slow_burn={status['slow_burn']:.2f}"
            )
        payload = report.as_dict()
        payload["observability"] = observability
        write_bench_json(f"serving_{mode}", payload)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
