"""Observability instrumentation overhead: traced vs dark, wall clock.

The observability plane (span trees, structured events, slow-query
sampling) rides the query hot path, so this bench holds it to a
committed bound: with everything on, real python wall time for a fixed
query workload must stay within **10%** of the same workload with
instrumentation off (tracer disabled, event log detached, slowlog
sampling off).

Both engines are built once; only the query loop is timed, repeated
``REPEATS`` times taking the minimum (steadiest) wall time per config.
All query *results* are identical either way — instrumentation must
never change what a query returns.

A third, separately-timed pass runs with ``PROFILER`` enabled to report
where real python time goes per phase against the simulated cost it
models — the attribution baseline for the ROADMAP item-1 multiprocess
work (that run is excluded from the overhead comparison; the profiler
has its own cost).

Artifacts: ``BENCH_observe_overhead.json`` plus the instrumented run's
``BENCH_observe_events.jsonl`` and ``BENCH_observe_slowlog.jsonl``.

Standalone::

    PYTHONPATH=src python benchmarks/bench_observe_overhead.py
"""

import os
import sys
import time

import pytest

if __package__ in (None, ""):  # standalone CLI
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    fmt_table,
    load_blendhouse,
    record,
    smoke_scaled,
    write_bench_json,
)
from repro.observe.profile import PROFILER
from repro.workloads.datasets import make_cohere_like

N = smoke_scaled(6000, 1500)
DIM = smoke_scaled(48, 16)
N_QUERIES = smoke_scaled(40, 16)
QUERIES_PER_PASS = smoke_scaled(300, 80)
REPEATS = 5
SEGMENT_ROWS = smoke_scaled(1200, 500)
# The committed bound: full instrumentation costs at most this much
# extra wall time (CI gates on it in the observe-smoke job).
MAX_OVERHEAD = 0.10


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


def build_engine(instrumented):
    """One loaded engine, instrumentation fully on or fully dark."""
    dataset = make_cohere_like(n=N, dim=DIM, n_queries=N_QUERIES, seed=7)
    db = load_blendhouse(dataset, index_type="HNSW",
                         max_segment_rows=SEGMENT_ROWS)
    if instrumented:
        # Representative production config: tracing on, events on,
        # slowlog in tail-sampling mode with a realistic threshold.
        db.execute("SET slowlog_threshold_ms = 5")
        db.execute("SET slowlog_sample_every = 20")
    else:
        db.tracer.enabled = False
        db.metrics.events = None  # emit_event becomes a no-op
        db.slowlog.sample_every = 0
        db.slowlog.threshold_s = float("inf")
    sqls = [
        f"SELECT id, dist FROM bench ORDER BY "
        f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT 10"
        for query in dataset.queries
    ]
    return db, sqls


def run_pass(db, sqls):
    """One timed pass of the query loop; returns (wall_s, checksum)."""
    checksum = 0
    start = time.perf_counter()
    for qi in range(QUERIES_PER_PASS):
        result = db.execute(sqls[qi % len(sqls)])
        checksum ^= hash(tuple(row[0] for row in result.rows))
    return time.perf_counter() - start, checksum


def measure():
    """Interleaved A/B wall-time measurement of both configs.

    Passes alternate dark/instrumented so slow machine-level drift
    (frequency scaling, page cache state) hits both configs equally;
    the minimum per config is the steadiest observation.
    """
    db_off, sqls = build_engine(instrumented=False)
    db_on, _ = build_engine(instrumented=True)
    run_pass(db_off, sqls)  # warmups: caches, plan cache, index loads
    run_pass(db_on, sqls)
    walls_off, walls_on = [], []
    sum_off = sum_on = 0
    for _ in range(REPEATS):
        wall, sum_off = run_pass(db_off, sqls)
        walls_off.append(wall)
        wall, sum_on = run_pass(db_on, sqls)
        walls_on.append(wall)
    assert sum_on == sum_off, "instrumentation changed query results"
    return db_on, min(walls_off), min(walls_on)


@pytest.fixture(scope="module")
def overhead():
    return measure()


def profile_report():
    """A separate profiled pass attributing real time per phase."""
    db, sqls = build_engine(instrumented=True)
    run_pass(db, sqls)
    PROFILER.reset()
    PROFILER.enable()
    try:
        run_pass(db, sqls)
    finally:
        PROFILER.disable()
    return PROFILER.report()


def test_observe_overhead(benchmark, overhead):
    db_on, wall_off, wall_on = overhead
    ratio = (wall_on - wall_off) / wall_off
    profile = profile_report()

    print(fmt_table(
        f"Observability overhead: {QUERIES_PER_PASS} queries, "
        f"min of {REPEATS} passes (real seconds)",
        ["config", "wall (s)", "per query (ms)"],
        [
            ["instrumentation off", wall_off, wall_off / QUERIES_PER_PASS * 1e3],
            ["instrumentation on", wall_on, wall_on / QUERIES_PER_PASS * 1e3],
            ["overhead", ratio, ""],
        ],
    ))
    phase_rows = [
        [name, stat["calls"], stat["real_s"] * 1e3, stat["sim_s"] * 1e3,
         f"{stat['overhead_x']:.2f}" if stat["overhead_x"] is not None else "-"]
        for name, stat in profile["phases"].items()
    ]
    print(fmt_table(
        "Wall-clock profile (separate pass, REPRO_PROFILE semantics)",
        ["phase", "calls", "real ms", "sim ms", "real/sim"],
        phase_rows,
    ))

    payload = {
        "queries_per_pass": QUERIES_PER_PASS,
        "repeats": REPEATS,
        "wall_off_s": wall_off,
        "wall_on_s": wall_on,
        "overhead": ratio,
        "max_overhead": MAX_OVERHEAD,
        "events": db_on.events.summary(),
        "slowlog_recorded": db_on.slowlog.recorded,
        "profile": profile,
    }
    record(benchmark, "overhead", payload)
    write_bench_json("observe_overhead", payload)
    db_on.events.dump_jsonl("BENCH_observe_events.jsonl")
    db_on.slowlog.dump_jsonl("BENCH_observe_slowlog.jsonl")

    # The instrumented run actually instrumented: events flowed and the
    # tail sampler captured flight records.
    assert payload["events"]["total"] > 0
    assert payload["slowlog_recorded"] > 0
    assert ratio <= MAX_OVERHEAD, (
        f"instrumentation overhead {ratio:.1%} exceeds the committed "
        f"{MAX_OVERHEAD:.0%} bound"
    )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def main():
    db_on, wall_off, wall_on = measure()
    ratio = (wall_on - wall_off) / wall_off
    profile = profile_report()
    payload = {
        "queries_per_pass": QUERIES_PER_PASS,
        "repeats": REPEATS,
        "wall_off_s": wall_off,
        "wall_on_s": wall_on,
        "overhead": ratio,
        "max_overhead": MAX_OVERHEAD,
        "events": db_on.events.summary(),
        "slowlog_recorded": db_on.slowlog.recorded,
        "profile": profile,
    }
    write_bench_json("observe_overhead", payload)
    db_on.events.dump_jsonl("BENCH_observe_events.jsonl")
    db_on.slowlog.dump_jsonl("BENCH_observe_slowlog.jsonl")
    print(
        f"off {wall_off:.3f}s  on {wall_on:.3f}s  "
        f"overhead {ratio:.1%} (bound {MAX_OVERHEAD:.0%})"
    )
    return 0 if ratio <= MAX_OVERHEAD else 1


if __name__ == "__main__":
    sys.exit(main())
