"""CI kernel-regression gate for the Fig 13 QPS curves.

Compares a fresh ``BENCH_fig13_index_recall_qps.json`` (written by
``bench_fig13_index_recall_qps.py``) against the committed baseline in
``benchmarks/baselines/``, failing if any sweep point's QPS drops more
than the threshold below baseline.  QPS here is *simulated* — derived
from deterministic cost-model charges, not wall time — so run-to-run
noise is zero and a tight gate is safe: a drop can only come from a code
change that makes the engine do more charged work per query.

Recall is also checked (absolute tolerance) so a "speedup" cannot be
bought by silently degrading result quality.

Usage::

    python benchmarks/check_kernel_regression.py \
        [--current BENCH_fig13_index_recall_qps.json] \
        [--baseline benchmarks/baselines/BENCH_fig13_baseline.json] \
        [--max-qps-drop 0.10] [--max-recall-drop 0.005]

Exit status 0 when every point passes, 1 otherwise.  When kernels get
*faster* on purpose, refresh the baseline by copying the new artifact
over the committed one (CI uploads both).
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_CURRENT = "BENCH_fig13_index_recall_qps.json"
DEFAULT_BASELINE = "benchmarks/baselines/BENCH_fig13_baseline.json"


def _point_key(point: dict) -> str:
    params = point.get("params", {})
    return ",".join(f"{k}={v}" for k, v in sorted(params.items()))


def check(
    current_path: str,
    baseline_path: str,
    max_qps_drop: float,
    max_recall_drop: float,
) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(current_path) as handle:
        current = json.load(handle)

    failures = []
    for label, base_points in baseline.items():
        cur_points = {_point_key(p): p for p in current.get(label, [])}
        for base in base_points:
            key = _point_key(base)
            cur = cur_points.get(key)
            if cur is None:
                failures.append(f"{label} {key}: point missing from current run")
                continue
            floor = base["qps"] * (1.0 - max_qps_drop)
            status = "ok"
            if cur["qps"] < floor:
                failures.append(
                    f"{label} {key}: QPS {cur['qps']:.1f} < floor {floor:.1f} "
                    f"(baseline {base['qps']:.1f}, max drop {max_qps_drop:.0%})"
                )
                status = "QPS REGRESSION"
            if cur["recall"] < base["recall"] - max_recall_drop:
                failures.append(
                    f"{label} {key}: recall {cur['recall']:.4f} < "
                    f"baseline {base['recall']:.4f} - {max_recall_drop}"
                )
                status = "RECALL REGRESSION"
            print(
                f"{label:12s} {key:14s} qps {base['qps']:9.1f} -> {cur['qps']:9.1f}  "
                f"recall {base['recall']:.4f} -> {cur['recall']:.4f}  [{status}]"
            )
    if failures:
        print("\nkernel regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nkernel regression gate passed")
    return 0


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--max-qps-drop", type=float, default=0.10)
    parser.add_argument("--max-recall-drop", type=float, default=0.005)
    args = parser.parse_args(argv)
    return check(args.current, args.baseline, args.max_qps_drop, args.max_recall_drop)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
