"""Parallel segment fan-out and batched multi-query execution.

Two claims, both on simulated latency:

* **Fan-out**: an 8-segment ANN scan on 8 simulated cores finishes at
  the per-segment makespan, not the per-segment sum — at least 2x
  faster than serial execution, with byte-identical results.
* **Batching**: submitting ``nq = 32`` brute-force queries as one batch
  computes one ``(nq, n)`` distance kernel (GEMM) instead of 32
  sequential ``(1, n)`` scans, and the amortized plan + kernel cost
  beats 32 separate submissions.
"""

import numpy as np
import pytest

from benchmarks.common import (
    BENCH_COST,
    fmt_table,
    measure_batch_latency,
    measure_serial_latency,
    record,
    smoke_scaled,
    write_bench_json,
)
from repro.core.database import BlendHouse
from repro.workloads.datasets import make_cohere_like

SEGMENTS = 8
ROWS_PER_SEGMENT = smoke_scaled(600, 300)
DIM = 32
N_QUERIES = smoke_scaled(16, 8)
BATCH_NQ = 32
K = 10


def vector_sql(vector):
    return "[" + ",".join(repr(float(x)) for x in vector) + "]"


def build_db(index_type: str, workers: int) -> BlendHouse:
    dataset = make_cohere_like(
        n=SEGMENTS * ROWS_PER_SEGMENT, dim=DIM, n_queries=max(N_QUERIES, BATCH_NQ), seed=7
    )
    db = BlendHouse(cost_model=BENCH_COST)
    options = f"'DIM={DIM}'"
    db.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE {index_type}({options}))"
    )
    db.table("bench").writer.config.max_segment_rows = ROWS_PER_SEGMENT
    db.insert_columns(
        "bench",
        {"id": dataset.scalars["id"], "attr": dataset.scalars["attr"]},
        dataset.vectors,
    )
    if workers > 1:
        db.execute(f"SET parallel_workers = {workers}")
    db._bench_queries = dataset.queries
    return db


def knn_sql(query) -> str:
    return (
        f"SELECT id, dist FROM bench ORDER BY "
        f"L2Distance(embedding, {vector_sql(query)}) AS dist LIMIT {K}"
    )


@pytest.fixture(scope="module")
def fanout_results():
    """Warm-cache serial vs parallel latency on the same workload."""
    rows = []
    results_by_workers = {}
    for workers in (1, 8):
        db = build_db("HNSW", workers)
        queries = db._bench_queries[:N_QUERIES]
        sqls = [knn_sql(q) for q in queries]
        measure_serial_latency(db, sqls)  # warm plan/column/index caches
        # Execution-only latency: planning cost is identical for both
        # pool sizes, and the claim under test is about the scan.
        total, ids = measure_serial_latency(db, sqls, include_planning=False)
        rows.append([workers, total, total / len(sqls)])
        results_by_workers[workers] = (total, ids)
    return rows, results_by_workers


def test_parallel_fanout_speedup(benchmark, fanout_results):
    rows, by_workers = fanout_results
    print(fmt_table(
        "Parallel fan-out: 8 segments, serial vs 8 lanes (simulated)",
        ["workers", "total_s", "per_query_s"],
        rows,
    ))
    serial_total, serial_ids = by_workers[1]
    parallel_total, parallel_ids = by_workers[8]
    record(benchmark, "serial_s", serial_total)
    record(benchmark, "parallel_s", parallel_total)
    speedup = serial_total / parallel_total
    record(benchmark, "speedup", speedup)
    write_bench_json("parallel_fanout", {
        "serial_s": serial_total,
        "parallel_s": parallel_total,
        "speedup": speedup,
    })

    # Same top-k rows regardless of the pool size...
    assert parallel_ids == serial_ids
    # ...and the 8-lane makespan is at least 2x better than the serial sum.
    assert speedup >= 2.0

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


@pytest.fixture(scope="module")
def batch_results():
    """nq=32 brute-force queries: sequential vs one batched submission."""
    db = build_db("FLAT", 1)
    queries = db._bench_queries[:BATCH_NQ]
    sqls = [knn_sql(q) for q in queries]
    measure_serial_latency(db, sqls[:2])  # warm caches
    sequential_total, sequential_ids = measure_serial_latency(db, sqls)
    batch_total, batch_ids = measure_batch_latency(db, sqls)
    # API-level batch: one plan for the whole matrix, rebinds are free.
    start = db.clock.now
    api_batch = db.search_batch("bench", np.stack(list(queries)), k=K)
    api_total = db.clock.now - start
    api_ids = [[row[0] for row in result.rows] for result in api_batch.results]
    return {
        "sequential": (sequential_total, sequential_ids),
        "sql_batch": (batch_total, batch_ids),
        "api_batch": (api_total, api_ids),
    }


def test_batched_queries_beat_sequential(benchmark, batch_results):
    sequential_total, sequential_ids = batch_results["sequential"]
    batch_total, batch_ids = batch_results["sql_batch"]
    api_total, api_ids = batch_results["api_batch"]
    print(fmt_table(
        f"Batched nq={BATCH_NQ} brute force vs sequential (simulated)",
        ["mode", "total_s", "per_query_s"],
        [
            ["sequential", sequential_total, sequential_total / BATCH_NQ],
            ["batched SQL", batch_total, batch_total / BATCH_NQ],
            ["batched API", api_total, api_total / BATCH_NQ],
        ],
    ))
    record(benchmark, "sequential_s", sequential_total)
    record(benchmark, "batch_s", batch_total)
    record(benchmark, "api_batch_s", api_total)
    speedup = sequential_total / batch_total
    record(benchmark, "speedup", speedup)
    write_bench_json("batched_queries", {
        "sequential_s": sequential_total,
        "batch_s": batch_total,
        "api_batch_s": api_total,
        "speedup": speedup,
    })

    # The batch returns the same neighbors per query...
    assert batch_ids == sequential_ids
    assert api_ids == sequential_ids
    # ...in strictly less simulated time than 32 separate submissions,
    # whether submitted as 32 SQL statements or one query matrix.
    assert batch_total < sequential_total
    assert api_total < batch_total

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
