"""Ablation — vector search serving on vs off during scale-out.

Isolates the §II-D serving design: with serving disabled, a freshly
scaled warehouse falls back to brute-force scans for every moved segment
until background loads finish (the Manu-style behaviour the paper
contrasts against); with serving enabled the same queries borrow the
previous owners' caches over RPC.  Measured is the mean query latency in
the window right after scaling, before any background load completes.
"""

import pytest

from benchmarks.common import BENCH_COST, fmt_table, record
from repro.cluster.engine import ClusteredBlendHouse
from repro.cluster.warehouse import WarehouseConfig
from repro.simulate.metrics import LatencyRecorder
from repro.workloads.datasets import make_cohere_like

FIG_COST = BENCH_COST.scaled(rpc_round_trip_s=1e-4)
N_QUERIES = 10


def vector_sql(vector):
    return "[" + ",".join(f"{float(x):.6f}" for x in vector) + "]"


def _scaled_latency(serving_enabled: bool) -> dict:
    dataset = make_cohere_like(n=40_000, dim=64, n_queries=N_QUERIES, seed=31)
    cluster = ClusteredBlendHouse(
        read_workers=2,
        cost_model=FIG_COST,
        warehouse_config=WarehouseConfig(serving_enabled=serving_enabled),
    )
    cluster.execute(
        f"CREATE TABLE bench (id UInt64, attr Int64, embedding Array(Float32), "
        f"INDEX ann embedding TYPE IVFFLAT('DIM={dataset.dim}'))"
    )
    cluster.db.table("bench").writer.config.max_segment_rows = 8000
    cluster.insert_columns(
        "bench",
        {"id": dataset.scalars["id"], "attr": dataset.scalars["attr"]},
        dataset.vectors,
    )
    cluster.preload("bench")

    def run_pass():
        recorder = LatencyRecorder()
        for query in dataset.queries:
            sql = (
                f"SELECT id FROM bench ORDER BY "
                f"L2Distance(embedding, {vector_sql(query)}) LIMIT 10"
            )
            start = cluster.clock.now
            cluster.execute(sql)
            recorder.record(cluster.clock.now - start)
        return recorder.summary().mean

    run_pass()  # warmup
    warm = run_pass()
    # Freeze background warm-up so the whole pass measures the
    # immediately-after-scaling state.
    for worker in cluster.read_vw.workers.values():
        worker.schedule_background_load = lambda key: None
    cluster.scale_to(3)
    for worker in cluster.read_vw.workers.values():
        worker.schedule_background_load = lambda key: None
    after_scale = run_pass()
    exporter = cluster.export_metrics()
    return {
        "warm": warm,
        "after_scale": after_scale,
        "serving_calls": exporter.counter("worker.serving_calls"),
        "brute_fallbacks": exporter.counter("worker.brute_fallbacks"),
    }


@pytest.fixture(scope="module")
def results():
    return {
        "serving on": _scaled_latency(True),
        "serving off": _scaled_latency(False),
    }


def test_ablation_serving(benchmark, results):
    rows = []
    for label, values in results.items():
        rows.append([
            label,
            values["warm"] * 1e3,
            values["after_scale"] * 1e3,
            values["after_scale"] / values["warm"],
            values["serving_calls"],
            values["brute_fallbacks"],
        ])
    print(fmt_table(
        "Ablation: latency right after scale-out, serving on vs off (sim ms)",
        ["config", "warm", "after scale", "degradation x",
         "serving RPCs", "brute fallbacks"],
        rows,
    ))
    record(benchmark, "after_scale_ms", {
        label: values["after_scale"] * 1e3 for label, values in results.items()
    })

    on = results["serving on"]
    off = results["serving off"]
    assert on["serving_calls"] > 0
    assert off["serving_calls"] == 0 and off["brute_fallbacks"] > 0
    # Serving keeps post-scaling latency well below the brute fallback.
    assert on["after_scale"] < off["after_scale"] * 0.75
    # And within an order of magnitude of warm-cache latency.  (The
    # kernel pass cut the warm baseline — plan rebind + vectorized
    # traversal — so the unchanged per-segment RPC round trip is now a
    # larger *multiple* of warm, even though the absolute after-scale
    # latency did not regress.)
    assert on["after_scale"] < 8 * on["warm"]

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
