"""Fig 10 — recall-vs-QPS trade-off curves for the three systems.

The paper sweeps search depth and plots recall against QPS; BlendHouse's
curve dominates (higher QPS at nearly every recall level).  We sweep
``ef_search`` on the shared Cohere-like world and print the three
series; the shape assertions are (a) every curve trades QPS for recall
monotonically in ef, and (b) BlendHouse dominates at the high-recall
end.
"""

import pytest

from benchmarks.common import fmt_table, record, sweep_baseline, sweep_blendhouse
from repro.workloads.vectorbench import make_hybrid_workload

EF_SWEEP = [16, 32, 64, 128, 256]


@pytest.fixture(scope="module")
def curves(cohere_ds, bh_cohere, milvus_cohere, pgvector_cohere):
    workload = make_hybrid_workload(cohere_ds, k=10)
    out = {"BlendHouse": sweep_blendhouse(bh_cohere, workload, EF_SWEEP)}
    bh_cohere.execute("SET ef_search = 64")
    out["Milvus"] = sweep_baseline(milvus_cohere, workload, EF_SWEEP)
    out["pgvector"] = sweep_baseline(pgvector_cohere, workload, EF_SWEEP)
    return out


def test_fig10_recall_vs_qps(benchmark, curves, bh_cohere, cohere_ds):
    rows = []
    for system, points in curves.items():
        for point in points:
            rows.append([system, point.params["ef_search"], point.recall, point.qps])
    print(fmt_table(
        "Fig 10: recall vs QPS (ef_search sweep, simulated QPS)",
        ["system", "ef_search", "recall", "QPS"],
        rows,
    ))
    record(benchmark, "curves", {
        system: [(p.params["ef_search"], p.recall, p.qps) for p in points]
        for system, points in curves.items()
    })

    for system, points in curves.items():
        recalls = [p.recall for p in points]
        qps = [p.qps for p in points]
        # Recall non-decreasing in ef; QPS non-increasing (small jitter
        # tolerated: deeper beams cost more).
        assert all(
            recalls[i] <= recalls[i + 1] + 0.02 for i in range(len(points) - 1)
        ), system
        assert qps[0] >= qps[-1], system

    # BlendHouse dominates at the deep-search end of the curve.
    def qps_at_max_ef(system):
        return curves[system][-1].qps

    assert qps_at_max_ef("BlendHouse") > qps_at_max_ef("Milvus")
    assert qps_at_max_ef("BlendHouse") > qps_at_max_ef("pgvector")

    workload = make_hybrid_workload(cohere_ds, k=10)
    sql = workload.sql(0)
    benchmark(lambda: bh_cohere.execute(sql))
